//! The LLC characteristic classifier FSM (Figure 8 of the paper).
//!
//! Consumed through the classification layer's [`crate::classifier::DualFsmClassifier`],
//! which steps this FSM and its MBA sibling in lockstep (DESIGN.md §12).
//!
//! The paper's figure is a state diagram whose transitions are described
//! in prose (§5.2); this module encodes that prose:
//!
//! * an application whose LLC access rate falls below α or whose miss
//!   ratio falls below β has no productive use for (more) cache and
//!   transitions to `Supply`;
//! * a `Demand` application that keeps improving by at least δ_P per
//!   granted way stays in `Demand`; when the improvement from a granted
//!   way is small it moves to `Maintain` (diminishing returns);
//! * a `Maintain` application whose miss ratio rises above Β (e.g. a
//!   phase change, or a way was reclaimed) moves back to `Demand`;
//! * a `Supply` application that *lost* performance by more than δ_P after
//!   a way was reclaimed moves straight to `Demand` (the reclaim was a
//!   mistake), and re-enters the active states when its miss ratio climbs
//!   back above the thresholds.
//!
//! The reconstructed diagram (cold = access rate < α or miss ratio < β;
//! hot = miss ratio > Β):
//!
//! ```text
//!              granted way && gain ≥ δ_P, or no grant
//!                 ┌────┐
//!                 ▼    │ hot
//!   ┌─────────► DEMAND ─┐
//!   │             │     │ granted way && gain < δ_P
//!   │ hot, or     │cold ▼
//!   │ reclaimed   │   MAINTAIN ◄─┐
//!   │ && hurt     │     │  │     │ warm
//!   │             ▼     │  └─────┘
//!   │  ┌─────► SUPPLY ◄─┘ cold
//!   │  │ cold     │
//!   │  └──────────┤ warm (→ MAINTAIN) / hot or painful reclaim (→ DEMAND)
//!   └─────────────┘
//! ```
//!
//! The row-by-row table lives in `tests/fsm_tables.rs`.

use crate::fsm::{AppState, Observation, ResourceEvent};
use crate::CoPartParams;

/// Per-application LLC classifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LlcClassifier {
    state: AppState,
}

impl LlcClassifier {
    /// Starts in the given initial state (chosen by the resource manager
    /// from the profiling data, §5.4.1).
    pub fn new(initial: AppState) -> LlcClassifier {
        LlcClassifier { state: initial }
    }

    /// The current state.
    pub fn state(&self) -> AppState {
        self.state
    }

    /// Forces a state (used when the manager re-profiles).
    pub fn reset(&mut self, state: AppState) {
        self.state = state;
    }

    /// Applies one period's observation and returns the new state.
    pub fn update(&mut self, p: &CoPartParams, obs: &Observation) -> AppState {
        let cold = obs.access_rate < p.alpha_access_rate || obs.miss_ratio < p.miss_ratio_supply;
        let hot = obs.miss_ratio > p.miss_ratio_demand;
        let improved = obs.perf_delta >= p.delta_p;
        let hurt = obs.perf_delta <= -p.delta_p;

        self.state = match self.state {
            AppState::Demand => {
                if cold {
                    // The cache is not being exercised: give ways back.
                    AppState::Supply
                } else if obs.event == ResourceEvent::GrantedLlc && !improved {
                    // An extra way bought little: diminishing returns.
                    AppState::Maintain
                } else {
                    AppState::Demand
                }
            }
            AppState::Maintain => {
                if cold {
                    AppState::Supply
                } else if hot || (obs.event == ResourceEvent::ReclaimedLlc && hurt) {
                    AppState::Demand
                } else {
                    AppState::Maintain
                }
            }
            AppState::Supply => {
                if obs.event == ResourceEvent::ReclaimedLlc && hurt {
                    // Supplying was a mistake; ask for the way back.
                    AppState::Demand
                } else if cold {
                    AppState::Supply
                } else if hot {
                    AppState::Demand
                } else {
                    AppState::Maintain
                }
            }
        };
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> CoPartParams {
        CoPartParams::default()
    }

    fn obs(
        perf_delta: f64,
        access_rate: f64,
        miss_ratio: f64,
        event: ResourceEvent,
    ) -> Observation {
        Observation {
            perf_delta,
            access_rate,
            miss_ratio,
            traffic_ratio: 0.0,
            event,
        }
    }

    /// A busy application with a miss ratio between β and Β.
    fn warm(perf_delta: f64, event: ResourceEvent) -> Observation {
        obs(perf_delta, 1.0e8, 0.02, event)
    }

    #[test]
    fn demand_stays_while_ways_keep_paying_off() {
        let mut c = LlcClassifier::new(AppState::Demand);
        assert_eq!(
            c.update(&p(), &obs(0.10, 1.0e8, 0.2, ResourceEvent::GrantedLlc)),
            AppState::Demand
        );
    }

    #[test]
    fn demand_to_maintain_on_diminishing_returns() {
        let mut c = LlcClassifier::new(AppState::Demand);
        assert_eq!(
            c.update(&p(), &obs(0.01, 1.0e8, 0.2, ResourceEvent::GrantedLlc)),
            AppState::Maintain
        );
    }

    #[test]
    fn demand_to_supply_when_cache_is_cold() {
        let mut c = LlcClassifier::new(AppState::Demand);
        // Low access rate.
        assert_eq!(
            c.update(&p(), &obs(0.0, 1.0e5, 0.5, ResourceEvent::GrantedLlc)),
            AppState::Supply
        );
        // Low miss ratio.
        let mut c2 = LlcClassifier::new(AppState::Demand);
        assert_eq!(
            c2.update(&p(), &obs(0.0, 1.0e8, 0.001, ResourceEvent::GrantedLlc)),
            AppState::Supply
        );
    }

    #[test]
    fn demand_persists_without_a_grant() {
        // No way was granted, so no evidence of diminishing returns yet.
        let mut c = LlcClassifier::new(AppState::Demand);
        assert_eq!(
            c.update(&p(), &warm(0.0, ResourceEvent::None)),
            AppState::Demand
        );
        assert_eq!(
            c.update(&p(), &warm(0.01, ResourceEvent::GrantedMba)),
            AppState::Demand
        );
    }

    #[test]
    fn maintain_to_demand_on_hot_miss_ratio() {
        let mut c = LlcClassifier::new(AppState::Maintain);
        assert_eq!(
            c.update(&p(), &obs(0.0, 1.0e8, 0.08, ResourceEvent::None)),
            AppState::Demand
        );
    }

    #[test]
    fn maintain_to_demand_when_a_reclaim_hurt() {
        let mut c = LlcClassifier::new(AppState::Maintain);
        assert_eq!(
            c.update(&p(), &warm(-0.2, ResourceEvent::ReclaimedLlc)),
            AppState::Demand
        );
    }

    #[test]
    fn maintain_holds_in_the_comfortable_band() {
        let mut c = LlcClassifier::new(AppState::Maintain);
        assert_eq!(
            c.update(&p(), &warm(0.0, ResourceEvent::None)),
            AppState::Maintain
        );
    }

    #[test]
    fn supply_to_demand_when_reclaim_backfires() {
        let mut c = LlcClassifier::new(AppState::Supply);
        assert_eq!(
            c.update(&p(), &obs(-0.1, 1.0e5, 0.001, ResourceEvent::ReclaimedLlc)),
            AppState::Demand
        );
    }

    #[test]
    fn supply_reactivates_through_miss_ratio() {
        let mut c = LlcClassifier::new(AppState::Supply);
        assert_eq!(
            c.update(&p(), &obs(0.0, 1.0e8, 0.08, ResourceEvent::None)),
            AppState::Demand
        );
        let mut c2 = LlcClassifier::new(AppState::Supply);
        assert_eq!(
            c2.update(&p(), &warm(0.0, ResourceEvent::None)),
            AppState::Maintain
        );
    }

    #[test]
    fn supply_holds_while_cold() {
        let mut c = LlcClassifier::new(AppState::Supply);
        assert_eq!(
            c.update(&p(), &obs(0.3, 1.0e5, 0.5, ResourceEvent::None)),
            AppState::Supply
        );
    }

    const STATES: [AppState; 3] = [AppState::Supply, AppState::Maintain, AppState::Demand];

    /// The classifier never leaves the three-state set and is a pure
    /// function of (state, observation) — checked over a seeded random
    /// sweep of the observation space.
    #[test]
    fn update_is_total_and_deterministic() {
        let mut rng = copart_rng::XorShift64Star::seed_from_u64(0x0001_1CF5);
        for _ in 0..500 {
            let initial = STATES[rng.gen_range(0..3usize)];
            let perf = rng.gen_range(-1.0..1.0);
            let rate = rng.gen_range(0.0..1.0e9);
            let mr = rng.gen_range(0.0..1.0);
            let event = match rng.gen_range(0..5u8) {
                0 => ResourceEvent::None,
                1 => ResourceEvent::GrantedLlc,
                2 => ResourceEvent::GrantedMba,
                3 => ResourceEvent::ReclaimedLlc,
                _ => ResourceEvent::ReclaimedMba,
            };
            let o = obs(perf, rate, mr, event);
            let mut a = LlcClassifier::new(initial);
            let mut b = LlcClassifier::new(initial);
            assert_eq!(a.update(&p(), &o), b.update(&p(), &o));
        }
    }

    /// A truly cold application (idle cache) always ends up in Supply
    /// unless a reclaim just hurt it.
    #[test]
    fn cold_apps_supply() {
        for initial in STATES {
            let o = obs(0.0, 1.0e4, 0.0, ResourceEvent::None);
            let mut c = LlcClassifier::new(initial);
            assert_eq!(c.update(&p(), &o), AppState::Supply);
        }
    }
}
