//! Fairness and throughput metrics (Eq 1–2 of the paper).

/// Unfairness of a set of application slowdowns: the coefficient of
/// variation σ/μ (Eq 2, following Selfa et al., reference 37 of the
/// paper); lower is better and
/// 0 means perfectly even slowdowns.
///
/// Uses the population standard deviation. Returns 0 for fewer than two
/// applications or a non-positive mean.
///
/// # Examples
///
/// ```
/// use copart_core::metrics::unfairness;
///
/// assert_eq!(unfairness(&[1.2, 1.2, 1.2]), 0.0); // Perfectly fair.
/// assert!((unfairness(&[1.0, 3.0]) - 0.5).abs() < 1e-12); // σ/μ = 1/2.
/// ```
pub fn unfairness(slowdowns: &[f64]) -> f64 {
    if slowdowns.len() < 2 {
        return 0.0;
    }
    let n = slowdowns.len() as f64;
    let mean = slowdowns.iter().sum::<f64>() / n;
    if mean <= 0.0 {
        return 0.0;
    }
    let var = slowdowns.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n;
    var.sqrt() / mean
}

/// Per-application slowdown (Eq 1): IPS at full resources over achieved
/// IPS. Returns 1 when the achieved IPS is non-positive together with a
/// non-positive reference (no information), and +∞ when a live reference
/// sees zero progress.
pub fn slowdown(ips_full: f64, ips_now: f64) -> f64 {
    if ips_now > 0.0 {
        (ips_full / ips_now).max(0.0)
    } else if ips_full > 0.0 {
        f64::INFINITY
    } else {
        1.0
    }
}

/// Weighted unfairness: σ/μ of `slowdown_i × weight_i`.
///
/// A priority extension beyond the paper (its §8 future-work direction of
/// richer fairness goals): an application with weight *w* is entitled to
/// run *w*× closer to its solo speed than a weight-1 application. With all
/// weights equal this reduces exactly to [`unfairness`].
///
/// # Panics
///
/// Panics when the slices differ in length or any weight is non-positive;
/// weights are configuration.
pub fn weighted_unfairness(slowdowns: &[f64], weights: &[f64]) -> f64 {
    assert_eq!(slowdowns.len(), weights.len(), "one weight per application");
    assert!(weights.iter().all(|w| *w > 0.0), "weights must be positive");
    let normalized: Vec<f64> = slowdowns.iter().zip(weights).map(|(s, w)| s * w).collect();
    unfairness(&normalized)
}

/// Geometric mean, the aggregate the paper uses for unfairness and
/// throughput summaries. Returns 0 for an empty slice or any non-positive
/// element.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() || xs.iter().any(|&x| x <= 0.0) {
        return 0.0;
    }
    let log_sum: f64 = xs.iter().map(|x| x.ln()).sum();
    (log_sum / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_slowdowns_are_perfectly_fair() {
        assert_eq!(unfairness(&[1.3, 1.3, 1.3, 1.3]), 0.0);
    }

    #[test]
    fn known_unfairness_value() {
        // Slowdowns 1 and 3: μ = 2, σ = 1, so σ/μ = 0.5.
        assert!((unfairness(&[1.0, 3.0]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn unfairness_edge_cases() {
        assert_eq!(unfairness(&[]), 0.0);
        assert_eq!(unfairness(&[2.0]), 0.0);
        assert_eq!(unfairness(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn slowdown_eq1() {
        assert!((slowdown(100.0, 50.0) - 2.0).abs() < 1e-12);
        assert_eq!(slowdown(100.0, 0.0), f64::INFINITY);
        assert_eq!(slowdown(0.0, 0.0), 1.0);
    }

    #[test]
    fn geomean_values() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[8.0]) - 8.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
        assert_eq!(geomean(&[1.0, 0.0]), 0.0);
    }

    #[test]
    fn weighted_unfairness_reduces_to_plain_with_unit_weights() {
        let s = [1.0, 2.0, 1.5];
        assert!((weighted_unfairness(&s, &[1.0, 1.0, 1.0]) - unfairness(&s)).abs() < 1e-12);
    }

    #[test]
    fn weighted_unfairness_rewards_proportional_slowdowns() {
        // App 0 is twice as important: it should run at half the slowdown
        // of app 1. Exactly proportional slowdowns are perfectly fair.
        assert!(weighted_unfairness(&[1.1, 2.2], &[2.0, 1.0]) < 1e-12);
        // Equal slowdowns are now *unfair* to the weighted app.
        assert!(weighted_unfairness(&[2.0, 2.0], &[2.0, 1.0]) > 0.3);
    }

    #[test]
    #[should_panic(expected = "one weight per application")]
    fn weighted_unfairness_checks_lengths() {
        let _ = weighted_unfairness(&[1.0, 2.0], &[1.0]);
    }

    #[test]
    #[should_panic(expected = "weights must be positive")]
    fn weighted_unfairness_checks_positivity() {
        let _ = weighted_unfairness(&[1.0, 2.0], &[1.0, 0.0]);
    }

    /// Deterministic random vectors for the property-style tests below
    /// (the offline build has no proptest; a seeded sweep covers the
    /// same input space reproducibly).
    fn random_vec(
        rng: &mut copart_rng::XorShift64Star,
        len_range: (usize, usize),
        lo: f64,
        hi: f64,
    ) -> Vec<f64> {
        let len = rng.gen_range(len_range.0..len_range.1);
        (0..len).map(|_| rng.gen_range(lo..hi)).collect()
    }

    /// σ/μ is invariant under uniform scaling of the slowdowns.
    #[test]
    fn unfairness_is_scale_invariant() {
        let mut rng = copart_rng::XorShift64Star::seed_from_u64(0xE41);
        for _ in 0..500 {
            let xs = random_vec(&mut rng, (2, 8), 0.5, 10.0);
            let k = rng.gen_range(0.1..10.0);
            let scaled: Vec<f64> = xs.iter().map(|x| x * k).collect();
            let a = unfairness(&xs);
            let b = unfairness(&scaled);
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    /// Unfairness is non-negative on positive slowdowns.
    #[test]
    fn unfairness_nonnegative() {
        let mut rng = copart_rng::XorShift64Star::seed_from_u64(0xE42);
        for _ in 0..500 {
            let xs = random_vec(&mut rng, (2, 8), 0.5, 10.0);
            assert!(unfairness(&xs) >= 0.0);
        }
    }

    /// Geomean sits between min and max.
    #[test]
    fn geomean_bounded() {
        let mut rng = copart_rng::XorShift64Star::seed_from_u64(0xE43);
        for _ in 0..500 {
            let xs = random_vec(&mut rng, (1, 8), 0.1, 10.0);
            let g = geomean(&xs);
            let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = xs.iter().cloned().fold(0.0f64, f64::max);
            assert!(g >= min - 1e-9 && g <= max + 1e-9);
        }
    }
}
