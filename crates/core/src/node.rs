//! The node seam: one consolidated machine as a fleet-ownable unit.
//!
//! [`ConsolidationRuntime`] is deliberately CLI-shaped: callers admit
//! workloads into a backend by hand, build the runtime, and drive
//! profiling themselves. A fleet controller owning hundreds of nodes
//! needs the same lifecycle as a single operation — *launch* (admit a
//! first set of applications, apply the equal split, profile with
//! retries), *admit*/*evict* (membership churn through the backend and
//! the controller in one step), *step* (one adaptation period), and
//! *snapshot* — without re-deriving the setup choreography per call
//! site. [`NodeRuntime`] packages exactly that, and [`NodeBackend`]
//! abstracts the one capability the runtime's own [`RdtBackend`] trait
//! lacks: starting and stopping whole workloads at runtime.
//!
//! The serve daemon's `ServeBackend` is this trait plus persistence;
//! `copart-fleet` holds `N` [`NodeRuntime`]s behind per-node fault
//! decorators. Both paths go through the same admission/eviction code,
//! so a fleet node's trace is byte-identical to a daemon's for the same
//! membership history — the invariant the migration tests pin down.

use copart_rdt::{ClosId, RdtBackend, RdtError, SimBackend};
use copart_sim::AppSpec;

use crate::runtime::{ConsolidationRuntime, PeriodRecord, RuntimeConfig, RuntimeSnapshot};

/// A backend that can start and stop whole workloads at runtime, beyond
/// the per-group RDT operations of [`RdtBackend`].
pub trait NodeBackend: RdtBackend {
    /// Starts a workload in a fresh group and returns its id.
    ///
    /// # Errors
    ///
    /// Fails when the platform cannot host another workload.
    fn admit(&mut self, spec: AppSpec) -> Result<ClosId, RdtError>;

    /// Stops a workload and releases its group.
    ///
    /// # Errors
    ///
    /// Fails on an unknown group.
    fn evict(&mut self, group: ClosId) -> Result<(), RdtError>;
}

impl NodeBackend for SimBackend {
    fn admit(&mut self, spec: AppSpec) -> Result<ClosId, RdtError> {
        self.add_workload(spec)
    }

    fn evict(&mut self, group: ClosId) -> Result<(), RdtError> {
        self.remove_workload(group)
    }
}

/// Runs profiling, retrying whole passes up to `attempts` times — under
/// fault injection a vanished group or a run of busy writes can abort a
/// pass, and callers (the serve daemon, `sim-run --faults`, fleet
/// nodes) give it several.
///
/// # Errors
///
/// Returns the last profiling error once the attempts are exhausted.
pub fn profile_with_retries<B: RdtBackend>(
    runtime: &mut ConsolidationRuntime<B>,
    attempts: u32,
) -> Result<(), String> {
    let mut last: Option<RdtError> = None;
    for _ in 0..attempts.max(1) {
        match runtime.profile() {
            Ok(()) => return Ok(()),
            Err(e) => last = Some(e),
        }
    }
    Err(format!(
        "profiling did not survive {attempts} attempts: {}",
        last.expect("at least one attempt ran")
    ))
}

/// One consolidated machine with its controller, owned as a unit: the
/// construction/stepping seam a fleet (or any other multi-node owner)
/// drives many of.
pub struct NodeRuntime<B: NodeBackend> {
    runtime: ConsolidationRuntime<B>,
    profile_attempts: u32,
}

impl<B: NodeBackend> NodeRuntime<B> {
    /// Launches a node: admits every spec into the backend (in order),
    /// builds the runtime (which applies the equal split), and profiles
    /// with up to `profile_attempts` retry passes. The attempts budget
    /// is kept for later [`NodeRuntime::admit`] re-profiling too.
    ///
    /// # Errors
    ///
    /// Fails when a workload does not fit the machine, the initial
    /// partition cannot be applied, or profiling does not survive the
    /// retry budget.
    ///
    /// # Panics
    ///
    /// Panics when `specs` is empty (a node launches with at least one
    /// application; an empty node has no runtime to own).
    pub fn launch(
        mut backend: B,
        specs: &[AppSpec],
        cfg: RuntimeConfig,
        profile_attempts: u32,
    ) -> Result<NodeRuntime<B>, String> {
        assert!(!specs.is_empty(), "a node launches with at least one app");
        let mut groups = Vec::with_capacity(specs.len());
        for spec in specs {
            let name = spec.name.clone();
            let group = backend
                .admit(spec.clone())
                .map_err(|e| format!("admission failed: {e}"))?;
            groups.push((group, name));
        }
        let runtime = ConsolidationRuntime::new(backend, groups, cfg)
            .map_err(|e| format!("initial partition apply failed: {e}"))?;
        let mut node = NodeRuntime {
            runtime,
            profile_attempts,
        };
        profile_with_retries(&mut node.runtime, profile_attempts)?;
        Ok(node)
    }

    /// Admits one more application: backend admission, then the §5.4.3
    /// launch path (equal split + whole-node re-profiling), with the
    /// node's retry budget on the profiling pass.
    ///
    /// # Errors
    ///
    /// Fails when the workload does not fit or re-profiling does not
    /// survive the retry budget; on a failed admission the workload is
    /// evicted again so the backend is left as found.
    pub fn admit(&mut self, spec: AppSpec, name: String) -> Result<ClosId, String> {
        let group = self
            .runtime
            .backend_mut()
            .admit(spec)
            .map_err(|e| format!("admission failed: {e}"))?;
        let mut result = self
            .runtime
            .add_app(group, name)
            .map_err(|e| format!("admission re-profiling failed: {e}"));
        // add_app runs a single profiling pass; under fault injection a
        // transient abort deserves the same retry allowance a launch gets.
        let mut budget = self.profile_attempts.max(1) - 1;
        while result.is_err() && budget > 0 {
            result = profile_with_retries(&mut self.runtime, 1);
            budget -= 1;
        }
        if let Err(e) = result {
            let _ = self.runtime.remove_app(group);
            let _ = self.runtime.backend_mut().evict(group);
            return Err(e);
        }
        Ok(group)
    }

    /// Evicts an application: controller removal (hand back resources,
    /// re-explore) then backend teardown. Evicting the last application
    /// leaves an empty-but-valid node; owners typically drop it.
    ///
    /// # Errors
    ///
    /// Fails on an unknown group or when the shrunken state cannot be
    /// applied.
    pub fn evict(&mut self, group: ClosId) -> Result<(), RdtError> {
        self.runtime.remove_app(group)?;
        self.runtime.backend_mut().evict(group)
    }

    /// Runs one adaptation period into a caller-held record (the
    /// allocation-free stepping path).
    ///
    /// # Errors
    ///
    /// Fails only when the platform cannot advance.
    pub fn step_into(&mut self, record: &mut PeriodRecord) -> Result<(), RdtError> {
        self.runtime.run_period_into(record)
    }

    /// Number of applications under management.
    pub fn n_apps(&self) -> usize {
        self.runtime.apps().len()
    }

    /// Whether the node manages no applications (post-eviction).
    pub fn is_empty(&self) -> bool {
        self.runtime.apps().is_empty()
    }

    /// The profiling retry budget this node was launched with.
    pub fn profile_attempts(&self) -> u32 {
        self.profile_attempts
    }

    /// Captures the controller's complete state (see
    /// [`ConsolidationRuntime::snapshot`]).
    pub fn snapshot(&self) -> RuntimeSnapshot {
        self.runtime.snapshot()
    }

    /// The underlying runtime (trace recorder, metrics, backend access).
    pub fn runtime(&self) -> &ConsolidationRuntime<B> {
        &self.runtime
    }

    /// Mutable access to the underlying runtime.
    pub fn runtime_mut(&mut self) -> &mut ConsolidationRuntime<B> {
        &mut self.runtime
    }

    /// Unwraps into the underlying runtime.
    pub fn into_runtime(self) -> ConsolidationRuntime<B> {
        self.runtime
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::WaysBudget;
    use crate::CoPartParams;
    use copart_sim::{Machine, MachineConfig};
    use copart_workloads::stream::StreamReference;
    use copart_workloads::Benchmark;

    fn node_config(machine: &MachineConfig) -> RuntimeConfig {
        RuntimeConfig {
            params: CoPartParams::default(),
            manage_llc: true,
            manage_mba: true,
            budget: WaysBudget::full_machine(machine.llc_ways),
            stream: StreamReference::compute(machine, 4),
            resilience: Default::default(),
            planner: Default::default(),
        }
    }

    #[test]
    fn launch_admit_evict_lifecycle() {
        let machine = MachineConfig::xeon_gold_6130();
        let backend = SimBackend::new(Machine::new(machine.clone()));
        let specs = [Benchmark::WaterNsquared.spec(), Benchmark::Swaptions.spec()];
        let mut node = NodeRuntime::launch(backend, &specs, node_config(&machine), 1).unwrap();
        assert_eq!(node.n_apps(), 2);
        for app in node.runtime().apps() {
            assert!(app.ips_full > 0.0, "launch must profile");
        }

        let g = node.admit(Benchmark::Ep.spec(), "ep-late".into()).unwrap();
        assert_eq!(node.n_apps(), 3);
        let mut record = PeriodRecord {
            time_ns: 0,
            phase: crate::runtime::Phase::Exploring,
            state: Default::default(),
            apps: Vec::new(),
            unfairness: 0.0,
        };
        node.step_into(&mut record).unwrap();
        assert_eq!(record.apps.len(), 3);

        node.evict(g).unwrap();
        assert_eq!(node.n_apps(), 2);
        node.step_into(&mut record).unwrap();
        assert_eq!(record.apps.len(), 2);
    }

    #[test]
    fn evicting_everyone_leaves_an_empty_node() {
        let machine = MachineConfig::xeon_gold_6130();
        let backend = SimBackend::new(Machine::new(machine.clone()));
        let specs = [Benchmark::Swaptions.spec()];
        let mut node = NodeRuntime::launch(backend, &specs, node_config(&machine), 1).unwrap();
        let g = node.runtime().apps()[0].group;
        node.evict(g).unwrap();
        assert!(node.is_empty());
    }

    #[test]
    fn node_lifecycle_trace_matches_hand_rolled_setup() {
        // The seam must be a pure refactor of the manual choreography:
        // same admissions, same profiling, same stepping ⇒ byte-identical
        // period records.
        let machine = MachineConfig::xeon_gold_6130();
        let cfg = node_config(&machine);
        let specs = [Benchmark::WaterNsquared.spec(), Benchmark::Ep.spec()];

        let backend = SimBackend::new(Machine::new(machine.clone()));
        let mut node = NodeRuntime::launch(backend, &specs, cfg.clone(), 1).unwrap();

        let mut backend = SimBackend::new(Machine::new(machine.clone()));
        let mut groups = Vec::new();
        for spec in &specs {
            let name = spec.name.clone();
            groups.push((backend.add_workload(spec.clone()).unwrap(), name));
        }
        let mut manual = ConsolidationRuntime::new(backend, groups, cfg).unwrap();
        manual.profile().unwrap();

        for _ in 0..8 {
            let a = node.runtime_mut().run_period().unwrap();
            let b = manual.run_period().unwrap();
            assert_eq!(a, b, "NodeRuntime diverged from the manual setup");
        }
    }
}
