//! The CoPart controller: coordinated LLC + memory-bandwidth partitioning
//! for fairness-aware workload consolidation (EuroSys '19).
//!
//! CoPart dynamically analyzes the characteristics of consolidated
//! applications and partitions Intel CAT way masks and MBA levels across
//! them to minimize *unfairness* — the coefficient of variation of the
//! applications' slowdowns (Eq 2 of the paper). The architecture follows
//! Figure 7:
//!
//! * [`llc_fsm::LlcClassifier`] — per-application Supply/Maintain/Demand
//!   FSM over LLC capacity (Fig 8),
//! * [`mba_fsm::MbaClassifier`] — the analogous FSM over memory bandwidth
//!   (Fig 9), driven by the STREAM-normalized memory traffic ratio,
//! * [`next_state::get_next_system_state`] — Algorithm 2: a
//!   Hospitals/Residents instability-chaining match between applications
//!   willing to supply resources (producers) and those demanding more
//!   (consumers), ordered by slowdown,
//! * [`runtime::ConsolidationRuntime`] — the resource manager's
//!   profile → explore → idle execution flow (Fig 10, Algorithm 1), and
//! * [`policies`] — the baseline allocation policies the paper compares
//!   against (EQ, ST, CAT-only, MBA-only, and the unpartitioned state).
//!
//! The runtime itself is a thin epoch driver over a four-layer
//! control-plane pipeline (DESIGN.md §12):
//!
//! * [`sensor`] — per-application counter sampling with degraded-mode
//!   EWMA bridging,
//! * [`classifier`] — the LLC/MBA FSM pair behind one interface,
//! * [`planner`] — Algorithm 1 as an [`planner::Explorer`], plus the
//!   [`planner::PolicyEngine`] trait every evaluated policy (including
//!   CoPart itself) plugs into, and
//! * [`actuator`] — transactional partition writes with bounded
//!   retry/backoff and prefix rollback.
//!
//! The controller is generic over [`copart_rdt::RdtBackend`], so it drives
//! the simulator and a resctrl filesystem identically.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod actuator;
pub mod classifier;
pub mod cluster;
pub mod fsm;
pub mod llc_fsm;
pub mod mba_fsm;
pub mod metrics;
pub mod next_state;
pub mod node;
pub mod params;
pub mod planner;
pub mod policies;
pub mod runtime;
pub mod scale;
pub mod sensor;
pub mod state;

pub use actuator::{Actuator, ApplyReport, ResilienceConfig, TransactionalActuator};
pub use classifier::{Classifier, DualFsmClassifier};
pub use fsm::{AppState, ResourceEvent};
pub use metrics::{geomean, unfairness};
pub use node::{profile_with_retries, NodeBackend, NodeRuntime};
pub use params::CoPartParams;
pub use planner::{ExplorerSnapshot, PlanContext, PolicyEngine, PolicyPlan};
pub use runtime::{
    AppRuntimeSnapshot, ConsolidationRuntime, ManagedApp, PeriodRecord, Phase, PlannerMode,
    RuntimeSnapshot,
};
pub use sensor::{Sensor, SensorReading, SensorSnapshot, WindowedSensor};
pub use state::{AllocationState, SystemState, WaysBudget};
