//! Shared types of the two characteristic-classifier FSMs (§5.2–5.3).
//!
//! The runtime never drives these FSMs directly: the classification layer
//! ([`crate::classifier`], DESIGN.md §12) steps the LLC/MBA pair behind
//! one [`crate::classifier::Classifier`] interface.

use std::fmt;

/// The three classifier states of Figures 8 and 9.
///
/// * `Supply` — a unit of the resource can be reclaimed from the
///   application without significant performance loss (the application is
///   a *producer* in the Algorithm 2 match);
/// * `Maintain` — more of the resource gives marginal gains, but taking
///   some away hurts;
/// * `Demand` — more of the resource is expected to significantly improve
///   performance (the application is a *consumer*).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AppState {
    /// Willing to give up a unit of the resource.
    Supply,
    /// Keep the current allocation.
    Maintain,
    /// Wants an additional unit of the resource.
    Demand,
}

impl fmt::Display for AppState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AppState::Supply => "Supply",
            AppState::Maintain => "Maintain",
            AppState::Demand => "Demand",
        })
    }
}

/// What the resource manager did to this application at the end of the
/// previous period. The FSMs are coordinated through this signal: e.g.
/// the memory-bandwidth FSM stays in Demand when a small performance gain
/// followed an *LLC* grant, because the small gain says nothing about
/// bandwidth sensitivity (§5.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ResourceEvent {
    /// No resource change was applied.
    #[default]
    None,
    /// The application received an additional LLC way.
    GrantedLlc,
    /// The application received an MBA level increase.
    GrantedMba,
    /// An LLC way was reclaimed from the application.
    ReclaimedLlc,
    /// The application's MBA level was decreased.
    ReclaimedMba,
}

/// One period's observations for one application, assembled by the
/// runtime from counter deltas.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Observation {
    /// Relative IPS change versus the previous period (positive = faster).
    pub perf_delta: f64,
    /// LLC accesses per second.
    pub access_rate: f64,
    /// LLC miss ratio in `[0, 1]`.
    pub miss_ratio: f64,
    /// Memory traffic ratio: LLC miss rate over STREAM's at the same MBA
    /// level (§5.3).
    pub traffic_ratio: f64,
    /// The resource change applied before this period.
    pub event: ResourceEvent,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names() {
        assert_eq!(AppState::Supply.to_string(), "Supply");
        assert_eq!(AppState::Maintain.to_string(), "Maintain");
        assert_eq!(AppState::Demand.to_string(), "Demand");
    }

    #[test]
    fn default_event_is_none() {
        assert_eq!(ResourceEvent::default(), ResourceEvent::None);
    }
}
