//! Resource-allocation state: per-application `(ways, MBA level)` pairs
//! (the paper's `s_i = (l_i, m_i)`, §2.3) and the system state `S`.

use copart_rng::XorShift64Star;

use copart_rdt::{CbmMask, ClosId, MbaLevel, RdtBackend, RdtError};

/// One application's resource allocation `s_i = (l_i, m_i)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AllocationState {
    /// Allocated LLC ways (`l_i ≥ 1`).
    pub ways: u32,
    /// Allocated MBA level (`m_i`).
    pub mba: MbaLevel,
}

/// The slice of the machine the controller may hand out.
///
/// On a dedicated server this is the whole LLC with no MBA ceiling; in the
/// §6.3 case study the outer server manager reserves low ways for the
/// latency-critical workload and caps the batch partition's MBA levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaysBudget {
    /// First LLC way available to the controller.
    pub first_way: u32,
    /// Number of contiguous ways available.
    pub total_ways: u32,
    /// Highest MBA level the controller may grant.
    pub mba_cap: MbaLevel,
}

impl WaysBudget {
    /// The whole machine: all `ways` ways, no MBA ceiling.
    pub fn full_machine(ways: u32) -> WaysBudget {
        WaysBudget {
            first_way: 0,
            total_ways: ways,
            mba_cap: MbaLevel::MAX,
        }
    }
}

/// The system state `S = {s_0, …, s_(N_A − 1)}`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SystemState {
    /// Per-application allocations, indexed like the managed app list.
    pub allocs: Vec<AllocationState>,
}

impl SystemState {
    /// The equal-allocation state: ways split as evenly as possible
    /// (earlier applications receive the remainder), every application at
    /// the same MBA level.
    ///
    /// # Panics
    ///
    /// Panics when there are more applications than budget ways, since
    /// every application needs at least one way.
    pub fn equal_split(n_apps: usize, budget: &WaysBudget, mba: MbaLevel) -> SystemState {
        assert!(n_apps >= 1, "need at least one application");
        assert!(
            n_apps as u32 <= budget.total_ways,
            "{n_apps} applications cannot each get a way out of {}",
            budget.total_ways
        );
        let base = budget.total_ways / n_apps as u32;
        let remainder = budget.total_ways as usize % n_apps;
        let mba = mba.min(budget.mba_cap);
        let allocs = (0..n_apps)
            .map(|i| AllocationState {
                ways: base + u32::from(i < remainder),
                mba,
            })
            .collect();
        SystemState { allocs }
    }

    /// The equal *share* MBA level for `n` applications: the level closest
    /// to `100 / n` percent. This is how the EQ baseline interprets
    /// "equally allocates the memory bandwidth": each application may
    /// issue an equal fraction of its unthrottled traffic.
    pub fn equal_mba_level(n_apps: usize) -> MbaLevel {
        MbaLevel::new((100 / n_apps.max(1)).min(100) as u8)
    }

    /// Number of applications.
    pub fn len(&self) -> usize {
        self.allocs.len()
    }

    /// Whether the state holds no applications.
    pub fn is_empty(&self) -> bool {
        self.allocs.is_empty()
    }

    /// Sum of allocated ways.
    pub fn total_ways(&self) -> u32 {
        self.allocs.iter().map(|a| a.ways).sum()
    }

    /// Checks the partitioning invariants against a budget: every
    /// application holds at least one way, the total fits the budget, and
    /// no MBA level exceeds the cap.
    pub fn is_valid(&self, budget: &WaysBudget) -> bool {
        !self.allocs.is_empty()
            && self.allocs.iter().all(|a| a.ways >= 1)
            && self.total_ways() <= budget.total_ways
            && self.allocs.iter().all(|a| a.mba <= budget.mba_cap)
    }

    /// Lays the allocations out as contiguous, disjoint CAT masks packed
    /// from `budget.first_way` upward, in application order. Any budget
    /// ways left over (total < budget) are appended to the last
    /// application's mask so the cache is never wasted.
    ///
    /// # Panics
    ///
    /// Panics when the state violates the budget (`is_valid` is false);
    /// callers must only apply valid states.
    pub fn masks(&self, budget: &WaysBudget, machine_ways: u32) -> Vec<CbmMask> {
        let mut out = Vec::with_capacity(self.allocs.len());
        self.masks_into(budget, machine_ways, &mut out);
        out
    }

    /// [`SystemState::masks`] into a caller-provided buffer (cleared
    /// first), so per-epoch actuation can reuse its scratch allocation.
    ///
    /// # Panics
    ///
    /// Panics when the state violates the budget (`is_valid` is false).
    pub fn masks_into(&self, budget: &WaysBudget, machine_ways: u32, out: &mut Vec<CbmMask>) {
        assert!(self.is_valid(budget), "cannot lay out an invalid state");
        out.clear();
        let spare = budget.total_ways - self.total_ways();
        let mut start = budget.first_way;
        let last = self.allocs.len() - 1;
        for (i, a) in self.allocs.iter().enumerate() {
            let count = a.ways + if i == last { spare } else { 0 };
            let mask = CbmMask::contiguous(start, count, machine_ways)
                .expect("valid state fits the machine");
            start += count;
            out.push(mask);
        }
    }

    /// Programs the state onto the backend, group by group.
    ///
    /// # Errors
    ///
    /// Propagates backend failures; the state may be partially applied in
    /// that case (the caller re-applies or re-adapts).
    pub fn apply<B: RdtBackend>(
        &self,
        backend: &mut B,
        groups: &[ClosId],
        budget: &WaysBudget,
    ) -> Result<(), RdtError> {
        assert_eq!(
            groups.len(),
            self.allocs.len(),
            "state and group list must be congruent"
        );
        let machine_ways = backend.capabilities().llc_ways;
        let masks = self.masks(budget, machine_ways);
        for ((group, alloc), mask) in groups.iter().zip(&self.allocs).zip(masks) {
            backend.set_cbm(*group, mask)?;
            backend.set_mba(*group, alloc.mba.min(budget.mba_cap))?;
        }
        Ok(())
    }

    /// A random valid neighbor state: either one way migrates between two
    /// applications, or one application's MBA level steps up or down
    /// (Algorithm 1's randomized restart when exploration stalls).
    ///
    /// `allow_llc` / `allow_mba` restrict which dimension may be
    /// perturbed — the CAT-only and MBA-only baselines pin one of them.
    /// Returns a state differing from `self` whenever any permitted
    /// perturbation is possible.
    pub fn neighbor(
        &self,
        budget: &WaysBudget,
        rng: &mut XorShift64Star,
        allow_llc: bool,
        allow_mba: bool,
    ) -> SystemState {
        let mut next = SystemState { allocs: Vec::new() };
        self.neighbor_into(budget, rng, allow_llc, allow_mba, &mut next);
        next
    }

    /// [`SystemState::neighbor`] into a caller-provided state (its
    /// allocation buffer is reused), with the identical RNG draw sequence.
    pub fn neighbor_into(
        &self,
        budget: &WaysBudget,
        rng: &mut XorShift64Star,
        allow_llc: bool,
        allow_mba: bool,
        next: &mut SystemState,
    ) {
        let n = self.allocs.len();
        next.allocs.clone_from(&self.allocs);
        if !allow_llc && !allow_mba {
            return;
        }
        for _ in 0..64 {
            match rng.gen_range(0..3u8) {
                0 if n >= 2 && allow_llc => {
                    // Move one way from a donor with spare ways.
                    let from = rng.gen_range(0..n);
                    let to = rng.gen_range(0..n);
                    if from != to && next.allocs[from].ways > 1 {
                        next.allocs[from].ways -= 1;
                        next.allocs[to].ways += 1;
                        return;
                    }
                }
                1 if allow_mba => {
                    let i = rng.gen_range(0..n);
                    let up = next.allocs[i].mba.step_up().min(budget.mba_cap);
                    if up != next.allocs[i].mba {
                        next.allocs[i].mba = up;
                        return;
                    }
                }
                2 if allow_mba => {
                    let i = rng.gen_range(0..n);
                    let down = next.allocs[i].mba.step_down();
                    if down != next.allocs[i].mba {
                        next.allocs[i].mba = down;
                        return;
                    }
                }
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn budget11() -> WaysBudget {
        WaysBudget::full_machine(11)
    }

    #[test]
    fn equal_split_distributes_remainder_first() {
        let s = SystemState::equal_split(4, &budget11(), MbaLevel::MAX);
        let ways: Vec<u32> = s.allocs.iter().map(|a| a.ways).collect();
        assert_eq!(ways, vec![3, 3, 3, 2]);
        assert_eq!(s.total_ways(), 11);
        assert!(s.is_valid(&budget11()));
    }

    #[test]
    fn equal_mba_levels() {
        assert_eq!(SystemState::equal_mba_level(3).percent(), 30);
        assert_eq!(SystemState::equal_mba_level(4).percent(), 30); // 25 → 30
        assert_eq!(SystemState::equal_mba_level(6).percent(), 20);
        assert_eq!(SystemState::equal_mba_level(1).percent(), 100);
        assert_eq!(SystemState::equal_mba_level(12).percent(), 10);
    }

    #[test]
    fn masks_are_disjoint_contiguous_and_cover_the_budget() {
        let s = SystemState::equal_split(4, &budget11(), MbaLevel::MAX);
        let masks = s.masks(&budget11(), 11);
        let mut union = 0u32;
        for m in &masks {
            assert_eq!(union & m.bits(), 0, "masks overlap");
            union |= m.bits();
        }
        assert_eq!(union, 0x7ff, "masks must cover all 11 ways");
    }

    #[test]
    fn spare_ways_go_to_the_last_app() {
        let s = SystemState {
            allocs: vec![
                AllocationState {
                    ways: 2,
                    mba: MbaLevel::MAX,
                },
                AllocationState {
                    ways: 3,
                    mba: MbaLevel::MAX,
                },
            ],
        };
        let masks = s.masks(&budget11(), 11);
        assert_eq!(masks[0].way_count(), 2);
        assert_eq!(masks[1].way_count(), 9, "3 own + 6 spare ways");
    }

    #[test]
    fn budget_offset_shifts_masks() {
        let budget = WaysBudget {
            first_way: 6,
            total_ways: 5,
            mba_cap: MbaLevel::new(40),
        };
        let s = SystemState::equal_split(2, &budget, MbaLevel::MAX);
        assert!(
            s.allocs.iter().all(|a| a.mba.percent() == 40),
            "cap applies"
        );
        let masks = s.masks(&budget, 11);
        assert!(masks.iter().all(|m| m.ways().all(|w| w >= 6)));
        let union: u32 = masks.iter().map(|m| m.bits()).fold(0, |a, b| a | b);
        assert_eq!(union, 0b0111_1100_0000);
    }

    #[test]
    fn validity_checks() {
        let budget = budget11();
        let mut s = SystemState::equal_split(4, &budget, MbaLevel::MAX);
        assert!(s.is_valid(&budget));
        s.allocs[0].ways = 0;
        assert!(!s.is_valid(&budget));
        s.allocs[0].ways = 9; // Total now 17 > 11.
        assert!(!s.is_valid(&budget));
    }

    #[test]
    #[should_panic(expected = "cannot each get a way")]
    fn too_many_apps_for_budget() {
        let budget = WaysBudget {
            first_way: 0,
            total_ways: 3,
            mba_cap: MbaLevel::MAX,
        };
        let _ = SystemState::equal_split(4, &budget, MbaLevel::MAX);
    }

    #[test]
    fn neighbors_are_valid_and_different() {
        let budget = budget11();
        let s = SystemState::equal_split(4, &budget, MbaLevel::new(50));
        let mut rng = XorShift64Star::seed_from_u64(9);
        let mut seen_diff = 0;
        for _ in 0..50 {
            let n = s.neighbor(&budget, &mut rng, true, true);
            assert!(n.is_valid(&budget), "neighbor invalid: {n:?}");
            if n != s {
                seen_diff += 1;
            }
        }
        assert!(seen_diff >= 45, "neighbors should almost always differ");
    }

    #[test]
    fn neighbor_respects_mba_cap() {
        let budget = WaysBudget {
            first_way: 0,
            total_ways: 11,
            mba_cap: MbaLevel::new(40),
        };
        let s = SystemState::equal_split(3, &budget, MbaLevel::new(40));
        let mut rng = XorShift64Star::seed_from_u64(3);
        for _ in 0..100 {
            let n = s.neighbor(&budget, &mut rng, true, true);
            assert!(n.allocs.iter().all(|a| a.mba <= budget.mba_cap));
        }
    }
}
