//! Algorithm 2: `getNextSystemState` — one Hospitals/Residents matching
//! step between resource producers and consumers.
//!
//! Resource *types* (LLC, MBA, ANY) act as hospitals whose capacity is the
//! number of applications willing to supply that type; applications
//! demanding a resource act as residents whose priority is their slowdown
//! (higher slowdown ⇒ stronger claim, improving fairness). Step one runs
//! instability chaining to decide which consumers obtain which resource
//! types; step two pairs each granted consumer with the *lowest-slowdown*
//! producer of that type (the application least hurt by giving a unit up)
//! and performs the unit transfer: one LLC way, or one MBA level step.

use copart_rng::XorShift64Star;

use copart_matching::chain::{self, Consumer};
use copart_rdt::{MbaLevel, ResourceKind};

use crate::fsm::{AppState, ResourceEvent};
use crate::state::{SystemState, WaysBudget};

/// The classifier outputs and slowdown estimate for one application — the
/// inputs Algorithm 2 needs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppClassification {
    /// LLC classifier state.
    pub llc: AppState,
    /// Memory-bandwidth classifier state.
    pub mba: AppState,
    /// Estimated slowdown (Eq 1); ties break toward lower app index.
    pub slowdown: f64,
}

/// The resource transfers applied to one application in one step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AppliedEvents {
    /// Received an LLC way.
    pub granted_llc: bool,
    /// Received an MBA level increase.
    pub granted_mba: bool,
    /// Lost an LLC way.
    pub reclaimed_llc: bool,
    /// Lost an MBA level.
    pub reclaimed_mba: bool,
}

impl AppliedEvents {
    /// The event as seen by the LLC classifier.
    pub fn llc_event(&self) -> ResourceEvent {
        if self.granted_llc {
            ResourceEvent::GrantedLlc
        } else if self.reclaimed_llc {
            ResourceEvent::ReclaimedLlc
        } else if self.granted_mba {
            ResourceEvent::GrantedMba
        } else if self.reclaimed_mba {
            ResourceEvent::ReclaimedMba
        } else {
            ResourceEvent::None
        }
    }

    /// The event as seen by the memory-bandwidth classifier (LLC grants
    /// are visible for the §5.3 cross-resource rule).
    pub fn mba_event(&self) -> ResourceEvent {
        if self.granted_mba {
            ResourceEvent::GrantedMba
        } else if self.reclaimed_mba {
            ResourceEvent::ReclaimedMba
        } else if self.granted_llc {
            ResourceEvent::GrantedLlc
        } else if self.reclaimed_llc {
            ResourceEvent::ReclaimedLlc
        } else {
            ResourceEvent::None
        }
    }

    fn any(&self) -> bool {
        self.granted_llc || self.granted_mba || self.reclaimed_llc || self.reclaimed_mba
    }
}

/// The result of one Algorithm 2 step.
#[derive(Debug, Clone, PartialEq)]
pub struct TransferOutcome {
    /// The proposed next system state.
    pub state: SystemState,
    /// Per-application transfers (same indexing as the input).
    pub events: Vec<AppliedEvents>,
    /// Whether any transfer happened (false ⇒ the state converged).
    pub changed: bool,
    /// Instability-chaining iterations the matching step used (0 for the
    /// greedy baseline, which runs no matching).
    pub matching_rounds: u32,
}

/// Category indices used in the matching instance.
const CAT_LLC: usize = 0;
const CAT_MBA: usize = 1;
const CAT_ANY: usize = 2;

/// Runs one `getNextSystemState` step.
///
/// `manage_llc` / `manage_mba` restrict which resources the controller
/// may move — the CAT-only and MBA-only baselines pin one of them.
pub fn get_next_system_state(
    current: &SystemState,
    apps: &[AppClassification],
    budget: &WaysBudget,
    rng: &mut XorShift64Star,
    manage_llc: bool,
    manage_mba: bool,
) -> TransferOutcome {
    assert_eq!(
        current.allocs.len(),
        apps.len(),
        "state/classification mismatch"
    );
    let n = apps.len();
    let mut state = current.clone();
    let mut events = vec![AppliedEvents::default(); n];

    // --- Producer pools (lines 2–5 of Algorithm 2). ---
    // `None` entries are virtual producers representing unallocated budget
    // ways; reclaiming from them costs nobody anything.
    let mut pool_llc: Vec<Option<usize>> = Vec::new();
    let mut pool_mba: Vec<Option<usize>> = Vec::new();
    let mut pool_any: Vec<Option<usize>> = Vec::new();
    for (i, (app, alloc)) in apps.iter().zip(&current.allocs).enumerate() {
        let can_llc = manage_llc && app.llc == AppState::Supply && alloc.ways > 1;
        let can_mba = manage_mba && app.mba == AppState::Supply && alloc.mba > MbaLevel::MIN;
        match (can_llc, can_mba) {
            (true, true) => pool_any.push(Some(i)),
            (true, false) => pool_llc.push(Some(i)),
            (false, true) => pool_mba.push(Some(i)),
            (false, false) => {}
        }
    }
    let spare_ways = budget.total_ways.saturating_sub(current.total_ways());
    if manage_llc {
        for _ in 0..spare_ways {
            pool_llc.push(None);
        }
    }
    // Producers are consumed lowest-slowdown first (virtual producers
    // first of all — they are free).
    let by_slowdown_asc = |a: &Option<usize>, b: &Option<usize>| match (a, b) {
        (None, None) => std::cmp::Ordering::Equal,
        (None, Some(_)) => std::cmp::Ordering::Less,
        (Some(_), None) => std::cmp::Ordering::Greater,
        (Some(x), Some(y)) => apps[*x]
            .slowdown
            .partial_cmp(&apps[*y].slowdown)
            .expect("slowdowns are not NaN")
            .then(x.cmp(y)),
    };
    pool_llc.sort_by(by_slowdown_asc);
    pool_mba.sort_by(by_slowdown_asc);
    pool_any.sort_by(by_slowdown_asc);

    // --- Consumers and their preference lists (lines 6–18). ---
    let mut consumer_apps: Vec<usize> = Vec::new();
    let mut consumers: Vec<Consumer> = Vec::new();
    // For ANY-demand consumers, the random specific-type priority (§5.4.2:
    // randomness avoids local optima).
    let mut any_choice: Vec<Option<ResourceKind>> = Vec::new();
    for (i, (app, alloc)) in apps.iter().zip(&current.allocs).enumerate() {
        let wants_llc = manage_llc && app.llc == AppState::Demand;
        let wants_mba = manage_mba && app.mba == AppState::Demand && alloc.mba < budget.mba_cap;
        let (preference, choice) = match (wants_llc, wants_mba) {
            (true, true) => {
                if rng.gen_bool(0.5) {
                    (vec![CAT_LLC, CAT_MBA, CAT_ANY], None)
                } else {
                    (vec![CAT_MBA, CAT_LLC, CAT_ANY], None)
                }
            }
            (true, false) => (vec![CAT_LLC, CAT_ANY], Some(ResourceKind::Llc)),
            (false, true) => (vec![CAT_MBA, CAT_ANY], Some(ResourceKind::MemoryBandwidth)),
            (false, false) => continue,
        };
        consumer_apps.push(i);
        any_choice.push(choice);
        consumers.push(Consumer {
            priority: app.slowdown,
            preference,
        });
    }

    let capacities = [pool_llc.len(), pool_mba.len(), pool_any.len()];
    let allocation = chain::allocate(&capacities, &consumers);

    // --- Step two: pair consumers with producers and transfer units
    // (lines 19–29). ---
    let mut cursor_llc = 0usize;
    let mut cursor_mba = 0usize;
    let mut cursor_any = 0usize;
    for t in [CAT_LLC, CAT_MBA, CAT_ANY] {
        for k in allocation.granted(t) {
            let c = consumer_apps[k];
            let kind = if t == CAT_LLC {
                ResourceKind::Llc
            } else if t == CAT_MBA {
                ResourceKind::MemoryBandwidth
            } else {
                match any_choice[k] {
                    Some(kind) => kind,
                    // Both the consumer and the producer accept either
                    // resource: pick randomly (search randomness, §5.4.2).
                    None => {
                        if rng.gen_bool(0.5) {
                            ResourceKind::Llc
                        } else {
                            ResourceKind::MemoryBandwidth
                        }
                    }
                }
            };
            let producer = match t {
                CAT_LLC => {
                    cursor_llc += 1;
                    pool_llc[cursor_llc - 1]
                }
                CAT_MBA => {
                    cursor_mba += 1;
                    pool_mba[cursor_mba - 1]
                }
                _ => {
                    cursor_any += 1;
                    pool_any[cursor_any - 1]
                }
            };
            // Reclaim from the producer.
            if let Some(p) = producer {
                match kind {
                    ResourceKind::Llc => {
                        debug_assert!(state.allocs[p].ways > 1);
                        state.allocs[p].ways -= 1;
                        events[p].reclaimed_llc = true;
                    }
                    ResourceKind::MemoryBandwidth => {
                        state.allocs[p].mba = state.allocs[p].mba.step_down();
                        events[p].reclaimed_mba = true;
                    }
                }
            }
            // Grant to the consumer.
            match kind {
                ResourceKind::Llc => {
                    state.allocs[c].ways += 1;
                    events[c].granted_llc = true;
                }
                ResourceKind::MemoryBandwidth => {
                    state.allocs[c].mba = state.allocs[c].mba.step_up().min(budget.mba_cap);
                    events[c].granted_mba = true;
                }
            }
        }
    }

    let changed = events.iter().any(AppliedEvents::any) && state != *current;
    TransferOutcome {
        state,
        events,
        changed,
        matching_rounds: allocation.rounds,
    }
}

/// The greedy baseline allocator (ablation of the HR matching design
/// choice): performs at most **one** transfer per period — the
/// highest-slowdown consumer takes one unit of a demanded resource from
/// the lowest-slowdown producer that can supply it (spare budget ways
/// count as free producers). No victim chaining, no randomization.
pub fn get_next_system_state_greedy(
    current: &SystemState,
    apps: &[AppClassification],
    budget: &WaysBudget,
    manage_llc: bool,
    manage_mba: bool,
) -> TransferOutcome {
    assert_eq!(
        current.allocs.len(),
        apps.len(),
        "state/classification mismatch"
    );
    let n = apps.len();
    let mut state = current.clone();
    let mut events = vec![AppliedEvents::default(); n];

    // Consumers, highest slowdown first.
    let mut consumers: Vec<usize> = (0..n)
        .filter(|&i| {
            (manage_llc && apps[i].llc == AppState::Demand)
                || (manage_mba
                    && apps[i].mba == AppState::Demand
                    && current.allocs[i].mba < budget.mba_cap)
        })
        .collect();
    consumers.sort_by(|&a, &b| {
        apps[b]
            .slowdown
            .partial_cmp(&apps[a].slowdown)
            .expect("slowdowns are not NaN")
            .then(a.cmp(&b))
    });

    let spare_ways = budget.total_ways.saturating_sub(current.total_ways());
    let min_producer = |kind: ResourceKind, state: &SystemState| -> Option<usize> {
        (0..n)
            .filter(|&i| match kind {
                ResourceKind::Llc => {
                    manage_llc && apps[i].llc == AppState::Supply && state.allocs[i].ways > 1
                }
                ResourceKind::MemoryBandwidth => {
                    manage_mba
                        && apps[i].mba == AppState::Supply
                        && state.allocs[i].mba > MbaLevel::MIN
                }
            })
            .min_by(|&a, &b| {
                apps[a]
                    .slowdown
                    .partial_cmp(&apps[b].slowdown)
                    .expect("slowdowns are not NaN")
                    .then(a.cmp(&b))
            })
    };

    for c in consumers {
        // Prefer LLC when both are demanded (deterministic greedy).
        let wants: Vec<ResourceKind> = [
            (
                manage_llc && apps[c].llc == AppState::Demand,
                ResourceKind::Llc,
            ),
            (
                manage_mba
                    && apps[c].mba == AppState::Demand
                    && current.allocs[c].mba < budget.mba_cap,
                ResourceKind::MemoryBandwidth,
            ),
        ]
        .into_iter()
        .filter_map(|(want, kind)| want.then_some(kind))
        .collect();
        for kind in wants {
            if kind == ResourceKind::Llc && spare_ways > 0 {
                state.allocs[c].ways += 1;
                events[c].granted_llc = true;
                return TransferOutcome {
                    state,
                    events,
                    changed: true,
                    matching_rounds: 0,
                };
            }
            if let Some(p) = min_producer(kind, &state) {
                match kind {
                    ResourceKind::Llc => {
                        state.allocs[p].ways -= 1;
                        state.allocs[c].ways += 1;
                        events[p].reclaimed_llc = true;
                        events[c].granted_llc = true;
                    }
                    ResourceKind::MemoryBandwidth => {
                        state.allocs[p].mba = state.allocs[p].mba.step_down();
                        state.allocs[c].mba = state.allocs[c].mba.step_up().min(budget.mba_cap);
                        events[p].reclaimed_mba = true;
                        events[c].granted_mba = true;
                    }
                }
                return TransferOutcome {
                    state,
                    events,
                    changed: true,
                    matching_rounds: 0,
                };
            }
        }
    }
    TransferOutcome {
        state,
        events,
        changed: false,
        matching_rounds: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::AllocationState;

    fn budget() -> WaysBudget {
        WaysBudget::full_machine(11)
    }

    fn rng() -> XorShift64Star {
        XorShift64Star::seed_from_u64(7)
    }

    fn alloc(ways: u32, mba: u8) -> AllocationState {
        AllocationState {
            ways,
            mba: MbaLevel::new(mba),
        }
    }

    fn class(llc: AppState, mba: AppState, slowdown: f64) -> AppClassification {
        AppClassification { llc, mba, slowdown }
    }

    #[test]
    fn llc_way_moves_from_supplier_to_demander() {
        let current = SystemState {
            allocs: vec![alloc(5, 100), alloc(6, 100)],
        };
        let apps = [
            class(AppState::Supply, AppState::Maintain, 1.0),
            class(AppState::Demand, AppState::Maintain, 2.0),
        ];
        let out = get_next_system_state(&current, &apps, &budget(), &mut rng(), true, true);
        assert!(out.changed);
        assert_eq!(out.state.allocs[0].ways, 4);
        assert_eq!(out.state.allocs[1].ways, 7);
        assert!(out.events[0].reclaimed_llc);
        assert!(out.events[1].granted_llc);
        assert_eq!(out.state.total_ways(), 11, "ways are conserved");
    }

    #[test]
    fn mba_step_moves_between_apps() {
        let current = SystemState {
            allocs: vec![alloc(5, 100), alloc(6, 50)],
        };
        let apps = [
            class(AppState::Maintain, AppState::Supply, 1.0),
            class(AppState::Maintain, AppState::Demand, 2.0),
        ];
        let out = get_next_system_state(&current, &apps, &budget(), &mut rng(), true, true);
        assert!(out.changed);
        assert_eq!(out.state.allocs[0].mba.percent(), 90);
        assert_eq!(out.state.allocs[1].mba.percent(), 60);
        assert!(out.events[0].reclaimed_mba);
        assert!(out.events[1].granted_mba);
    }

    #[test]
    fn oversubscribed_resource_goes_to_higher_slowdown() {
        // One LLC supplier, two demanders: the slower app must win.
        let current = SystemState {
            allocs: vec![alloc(4, 100), alloc(3, 100), alloc(4, 100)],
        };
        let apps = [
            class(AppState::Supply, AppState::Maintain, 1.0),
            class(AppState::Demand, AppState::Maintain, 1.2),
            class(AppState::Demand, AppState::Maintain, 3.0),
        ];
        let out = get_next_system_state(&current, &apps, &budget(), &mut rng(), true, true);
        assert_eq!(out.state.allocs[2].ways, 5, "highest slowdown wins");
        assert_eq!(out.state.allocs[1].ways, 3, "lower slowdown waits");
        assert_eq!(out.state.allocs[0].ways, 3);
    }

    #[test]
    fn lowest_slowdown_producer_gives_up_first() {
        let current = SystemState {
            allocs: vec![alloc(4, 100), alloc(3, 100), alloc(4, 100)],
        };
        let apps = [
            class(AppState::Supply, AppState::Maintain, 1.5),
            class(AppState::Supply, AppState::Maintain, 1.0),
            class(AppState::Demand, AppState::Maintain, 3.0),
        ];
        let out = get_next_system_state(&current, &apps, &budget(), &mut rng(), true, true);
        assert_eq!(out.state.allocs[1].ways, 2, "least-slowed producer pays");
        assert_eq!(out.state.allocs[0].ways, 4);
        assert_eq!(out.state.allocs[2].ways, 5);
    }

    #[test]
    fn no_participants_means_converged() {
        let current = SystemState {
            allocs: vec![alloc(5, 100), alloc(6, 100)],
        };
        let apps = [
            class(AppState::Maintain, AppState::Maintain, 1.0),
            class(AppState::Maintain, AppState::Maintain, 1.1),
        ];
        let out = get_next_system_state(&current, &apps, &budget(), &mut rng(), true, true);
        assert!(!out.changed);
        assert_eq!(out.state, current);
    }

    #[test]
    fn demand_without_supply_changes_nothing() {
        let current = SystemState {
            allocs: vec![alloc(5, 100), alloc(6, 100)],
        };
        let apps = [
            class(AppState::Demand, AppState::Maintain, 2.0),
            class(AppState::Demand, AppState::Maintain, 1.5),
        ];
        let out = get_next_system_state(&current, &apps, &budget(), &mut rng(), true, true);
        assert!(!out.changed, "nobody supplies, nothing moves");
    }

    #[test]
    fn spare_budget_ways_are_free_suppliers() {
        let current = SystemState {
            allocs: vec![alloc(2, 100), alloc(2, 100)],
        };
        let apps = [
            class(AppState::Demand, AppState::Maintain, 2.0),
            class(AppState::Maintain, AppState::Maintain, 1.0),
        ];
        let out = get_next_system_state(&current, &apps, &budget(), &mut rng(), true, true);
        assert!(out.changed);
        assert_eq!(out.state.allocs[0].ways, 3, "took a spare way");
        assert_eq!(out.state.allocs[1].ways, 2, "nobody was robbed");
        assert!(!out.events[1].reclaimed_llc);
    }

    #[test]
    fn producer_at_floor_cannot_supply() {
        let current = SystemState {
            allocs: vec![alloc(1, 100), alloc(10, 100)],
        };
        let apps = [
            class(AppState::Supply, AppState::Maintain, 1.0),
            class(AppState::Demand, AppState::Maintain, 2.0),
        ];
        let out = get_next_system_state(&current, &apps, &budget(), &mut rng(), true, true);
        assert!(!out.changed, "a single way can never be reclaimed");
    }

    #[test]
    fn consumer_at_mba_cap_cannot_demand_more() {
        let cap_budget = WaysBudget {
            first_way: 0,
            total_ways: 11,
            mba_cap: MbaLevel::new(40),
        };
        let current = SystemState {
            allocs: vec![alloc(5, 40), alloc(6, 40)],
        };
        let apps = [
            class(AppState::Maintain, AppState::Demand, 2.0),
            class(AppState::Maintain, AppState::Supply, 1.0),
        ];
        let out = get_next_system_state(&current, &apps, &cap_budget, &mut rng(), true, true);
        assert!(!out.changed, "already at the budget's MBA cap");
    }

    #[test]
    fn cat_only_never_touches_mba() {
        let current = SystemState {
            allocs: vec![alloc(5, 100), alloc(6, 50)],
        };
        let apps = [
            class(AppState::Supply, AppState::Supply, 1.0),
            class(AppState::Demand, AppState::Demand, 2.0),
        ];
        let out = get_next_system_state(&current, &apps, &budget(), &mut rng(), true, false);
        assert!(out.changed);
        assert_eq!(out.state.allocs[0].mba.percent(), 100);
        assert_eq!(out.state.allocs[1].mba.percent(), 50);
        assert_eq!(out.state.allocs[1].ways, 7);
    }

    #[test]
    fn mba_only_never_touches_ways() {
        let current = SystemState {
            allocs: vec![alloc(5, 100), alloc(6, 50)],
        };
        let apps = [
            class(AppState::Supply, AppState::Supply, 1.0),
            class(AppState::Demand, AppState::Demand, 2.0),
        ];
        let out = get_next_system_state(&current, &apps, &budget(), &mut rng(), false, true);
        assert!(out.changed);
        assert_eq!(out.state.allocs[0].ways, 5);
        assert_eq!(out.state.allocs[1].ways, 6);
        assert_eq!(out.state.allocs[1].mba.percent(), 60);
        assert_eq!(out.state.allocs[0].mba.percent(), 90);
    }

    #[test]
    fn any_supplier_serves_specific_demand() {
        let current = SystemState {
            allocs: vec![alloc(6, 80), alloc(5, 100)],
        };
        let apps = [
            class(AppState::Supply, AppState::Supply, 1.0), // ANY producer.
            class(AppState::Demand, AppState::Maintain, 2.0), // Wants LLC.
        ];
        let out = get_next_system_state(&current, &apps, &budget(), &mut rng(), true, true);
        assert!(out.changed);
        assert_eq!(out.state.allocs[1].ways, 6);
        assert_eq!(out.state.allocs[0].ways, 5);
        assert_eq!(
            out.state.allocs[0].mba.percent(),
            80,
            "the ANY producer paid in LLC, not MBA"
        );
    }

    /// Invariants on random inputs: ways conserved within the budget,
    /// every allocation stays valid, and transfers are unit-sized.
    /// Seeded sweep over the same input space the old property test
    /// sampled (instance shape and the explorer's own seed both vary).
    #[test]
    fn transfers_preserve_invariants() {
        let mut gen = XorShift64Star::seed_from_u64(0x7_2A57);
        for seed in 0u64..500 {
            let budget = budget();
            let mut allocs = Vec::new();
            let mut apps = Vec::new();
            let mut total = 0u32;
            for _ in 0..gen.gen_range(2..6usize) {
                let ways = gen.gen_range(1..6u32);
                let mba10 = gen.gen_range(1..=10u8);
                let llc_s = gen.gen_range(0..3u8);
                let mba_s = gen.gen_range(0..3u8);
                let slow100 = gen.gen_range(10..400u32);
                if total + ways > budget.total_ways {
                    break;
                }
                total += ways;
                allocs.push(alloc(ways, mba10 * 10));
                let st = |k: u8| match k {
                    0 => AppState::Supply,
                    1 => AppState::Maintain,
                    _ => AppState::Demand,
                };
                apps.push(class(st(llc_s), st(mba_s), f64::from(slow100) / 100.0));
            }
            if allocs.len() < 2 {
                continue;
            }
            let current = SystemState { allocs };
            let mut r = XorShift64Star::seed_from_u64(seed);
            let out = get_next_system_state(&current, &apps, &budget, &mut r, true, true);
            assert!(out.state.is_valid(&budget), "invalid: {:?}", out.state);
            assert!(out.state.total_ways() <= budget.total_ways);
            for (before, after) in current.allocs.iter().zip(&out.state.allocs) {
                let dw = i64::from(after.ways) - i64::from(before.ways);
                assert!(dw.abs() <= 1, "way transfers are unit-sized");
                let dm = i16::from(after.mba.percent()) - i16::from(before.mba.percent());
                assert!(dm.abs() <= 10, "MBA transfers are one step");
            }
            // Ways are conserved up to spare-budget grants.
            assert!(out.state.total_ways() >= current.total_ways());
            let spare = budget.total_ways - current.total_ways();
            assert!(out.state.total_ways() - current.total_ways() <= spare);
        }
    }
}

#[cfg(test)]
mod greedy_tests {
    use super::*;
    use crate::state::AllocationState;
    use copart_rdt::MbaLevel;

    fn alloc(ways: u32, mba: u8) -> AllocationState {
        AllocationState {
            ways,
            mba: MbaLevel::new(mba),
        }
    }

    fn class(llc: AppState, mba: AppState, slowdown: f64) -> AppClassification {
        AppClassification { llc, mba, slowdown }
    }

    fn budget() -> WaysBudget {
        WaysBudget::full_machine(11)
    }

    #[test]
    fn greedy_moves_exactly_one_unit() {
        let current = SystemState {
            allocs: vec![alloc(4, 100), alloc(3, 100), alloc(4, 100)],
        };
        // Two consumers, one supplier: only the slowest consumer is served
        // in a single greedy step.
        let apps = [
            class(AppState::Supply, AppState::Maintain, 1.0),
            class(AppState::Demand, AppState::Maintain, 2.0),
            class(AppState::Demand, AppState::Maintain, 3.0),
        ];
        let out = get_next_system_state_greedy(&current, &apps, &budget(), true, true);
        assert!(out.changed);
        assert_eq!(out.state.allocs[2].ways, 5, "slowest consumer first");
        assert_eq!(out.state.allocs[1].ways, 3, "second consumer waits");
        assert_eq!(out.state.allocs[0].ways, 3);
        let transfers: usize = out
            .events
            .iter()
            .map(|e| {
                usize::from(e.granted_llc)
                    + usize::from(e.granted_mba)
                    + usize::from(e.reclaimed_llc)
                    + usize::from(e.reclaimed_mba)
            })
            .sum();
        assert_eq!(transfers, 2, "one grant + one reclaim");
    }

    #[test]
    fn greedy_uses_spare_ways_before_robbing_producers() {
        let current = SystemState {
            allocs: vec![alloc(2, 100), alloc(2, 100)],
        };
        let apps = [
            class(AppState::Demand, AppState::Maintain, 2.0),
            class(AppState::Supply, AppState::Maintain, 1.0),
        ];
        let out = get_next_system_state_greedy(&current, &apps, &budget(), true, true);
        assert!(out.changed);
        assert_eq!(out.state.allocs[0].ways, 3);
        assert_eq!(
            out.state.allocs[1].ways, 2,
            "producer untouched while spare exists"
        );
    }

    #[test]
    fn greedy_falls_back_to_mba_when_no_llc_supply() {
        let current = SystemState {
            allocs: vec![alloc(6, 50), alloc(5, 100)],
        };
        let apps = [
            class(AppState::Demand, AppState::Demand, 2.0),
            class(AppState::Maintain, AppState::Supply, 1.0),
        ];
        let out = get_next_system_state_greedy(&current, &apps, &budget(), true, true);
        assert!(out.changed);
        assert_eq!(out.state.allocs[0].ways, 6, "no LLC producer available");
        assert_eq!(out.state.allocs[0].mba.percent(), 60);
        assert_eq!(out.state.allocs[1].mba.percent(), 90);
    }

    #[test]
    fn greedy_converges_when_nothing_moves() {
        let current = SystemState {
            allocs: vec![alloc(6, 50), alloc(5, 100)],
        };
        let apps = [
            class(AppState::Maintain, AppState::Maintain, 2.0),
            class(AppState::Maintain, AppState::Maintain, 1.0),
        ];
        let out = get_next_system_state_greedy(&current, &apps, &budget(), true, true);
        assert!(!out.changed);
        assert_eq!(out.state, current);
    }
}
