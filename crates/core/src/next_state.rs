//! Algorithm 2: `getNextSystemState` — one Hospitals/Residents matching
//! step between resource producers and consumers.
//!
//! Resource *types* (LLC, MBA, ANY) act as hospitals whose capacity is the
//! number of applications willing to supply that type; applications
//! demanding a resource act as residents whose priority is their slowdown
//! (higher slowdown ⇒ stronger claim, improving fairness). Step one runs
//! instability chaining to decide which consumers obtain which resource
//! types; step two pairs each granted consumer with the *lowest-slowdown*
//! producer of that type (the application least hurt by giving a unit up)
//! and performs the unit transfer: one LLC way, or one MBA level step.

use copart_rng::XorShift64Star;

use copart_matching::chain::{self, ChainScratch, Consumer};
use copart_rdt::{MbaLevel, ResourceKind};

use crate::fsm::{AppState, ResourceEvent};
use crate::state::{SystemState, WaysBudget};

/// The classifier outputs and slowdown estimate for one application — the
/// inputs Algorithm 2 needs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppClassification {
    /// LLC classifier state.
    pub llc: AppState,
    /// Memory-bandwidth classifier state.
    pub mba: AppState,
    /// Estimated slowdown (Eq 1); ties break toward lower app index.
    pub slowdown: f64,
}

/// The resource transfers applied to one application in one step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AppliedEvents {
    /// Received an LLC way.
    pub granted_llc: bool,
    /// Received an MBA level increase.
    pub granted_mba: bool,
    /// Lost an LLC way.
    pub reclaimed_llc: bool,
    /// Lost an MBA level.
    pub reclaimed_mba: bool,
}

impl AppliedEvents {
    /// The event as seen by the LLC classifier.
    pub fn llc_event(&self) -> ResourceEvent {
        if self.granted_llc {
            ResourceEvent::GrantedLlc
        } else if self.reclaimed_llc {
            ResourceEvent::ReclaimedLlc
        } else if self.granted_mba {
            ResourceEvent::GrantedMba
        } else if self.reclaimed_mba {
            ResourceEvent::ReclaimedMba
        } else {
            ResourceEvent::None
        }
    }

    /// The event as seen by the memory-bandwidth classifier (LLC grants
    /// are visible for the §5.3 cross-resource rule).
    pub fn mba_event(&self) -> ResourceEvent {
        if self.granted_mba {
            ResourceEvent::GrantedMba
        } else if self.reclaimed_mba {
            ResourceEvent::ReclaimedMba
        } else if self.granted_llc {
            ResourceEvent::GrantedLlc
        } else if self.reclaimed_llc {
            ResourceEvent::ReclaimedLlc
        } else {
            ResourceEvent::None
        }
    }

    fn any(&self) -> bool {
        self.granted_llc || self.granted_mba || self.reclaimed_llc || self.reclaimed_mba
    }
}

/// The result of one Algorithm 2 step.
#[derive(Debug, Clone, PartialEq)]
pub struct TransferOutcome {
    /// The proposed next system state.
    pub state: SystemState,
    /// Per-application transfers (same indexing as the input).
    pub events: Vec<AppliedEvents>,
    /// Whether any transfer happened (false ⇒ the state converged).
    pub changed: bool,
    /// Instability-chaining iterations the matching step used (0 for the
    /// greedy baseline, which runs no matching).
    pub matching_rounds: u32,
}

/// Category indices used in the matching instance.
const CAT_LLC: usize = 0;
const CAT_MBA: usize = 1;
const CAT_ANY: usize = 2;

/// The per-app inputs that determine an app's producer/consumer role in
/// the matching instance. The allocation enters only through the three
/// threshold booleans, so ordinary unit transfers that stay on the same
/// side of a threshold keep the cached role valid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct RoleKey {
    llc: AppState,
    mba: AppState,
    ways_above_floor: bool,
    mba_above_min: bool,
    mba_below_cap: bool,
}

/// Which producer pool an app belongs to, if any.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum ProducerRole {
    #[default]
    None,
    Llc,
    Mba,
    Any,
}

/// Which resources an app demands, if any.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum ConsumerRole {
    #[default]
    None,
    Llc,
    Mba,
    Both,
}

#[derive(Debug, Clone, Copy, Default)]
struct AppRole {
    producer: ProducerRole,
    consumer: ConsumerRole,
}

fn derive_role(key: RoleKey, manage_llc: bool, manage_mba: bool) -> AppRole {
    let can_llc = manage_llc && key.llc == AppState::Supply && key.ways_above_floor;
    let can_mba = manage_mba && key.mba == AppState::Supply && key.mba_above_min;
    let producer = match (can_llc, can_mba) {
        (true, true) => ProducerRole::Any,
        (true, false) => ProducerRole::Llc,
        (false, true) => ProducerRole::Mba,
        (false, false) => ProducerRole::None,
    };
    let wants_llc = manage_llc && key.llc == AppState::Demand;
    let wants_mba = manage_mba && key.mba == AppState::Demand && key.mba_below_cap;
    let consumer = match (wants_llc, wants_mba) {
        (true, true) => ConsumerRole::Both,
        (true, false) => ConsumerRole::Llc,
        (false, true) => ConsumerRole::Mba,
        (false, false) => ConsumerRole::None,
    };
    AppRole { producer, consumer }
}

/// Reusable buffers and the incremental role cache for
/// [`get_next_system_state_into`]. Hold one across epochs: pools,
/// consumer preference lists, and the chaining heaps are reused, and an
/// app's role is re-derived only when its role key changed since the
/// previous epoch (tracked by [`cache_hits`](Self::cache_hits) /
/// [`cache_misses`](Self::cache_misses)).
#[derive(Debug, Default, Clone)]
pub struct ExploreScratch {
    /// Last-seen role key per app; `None` forces a recompute.
    keys: Vec<Option<RoleKey>>,
    roles: Vec<AppRole>,
    /// `(manage_llc, manage_mba)` the cache was built for; a change
    /// invalidates every cached role.
    cfg: Option<(bool, bool)>,
    hits: u64,
    misses: u64,
    pool_llc: Vec<Option<usize>>,
    pool_mba: Vec<Option<usize>>,
    pool_any: Vec<Option<usize>>,
    consumers: Vec<Consumer>,
    consumer_apps: Vec<usize>,
    any_choice: Vec<Option<ResourceKind>>,
    assignment: Vec<Option<usize>>,
    chain: ChainScratch,
}

impl ExploreScratch {
    /// Apps whose cached role was reused since construction.
    pub fn cache_hits(&self) -> u64 {
        self.hits
    }

    /// Apps whose role had to be re-derived since construction.
    pub fn cache_misses(&self) -> u64 {
        self.misses
    }
}

/// The scalar results of one in-place Algorithm 2 step (the state and
/// events land in caller-provided buffers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepStats {
    /// Whether any transfer happened (false ⇒ the state converged).
    pub changed: bool,
    /// Instability-chaining iterations the matching step used.
    pub matching_rounds: u32,
}

/// In-place, incremental `getNextSystemState`: byte-identical to
/// [`get_next_system_state`] (state, events, `changed`, and
/// `matching_rounds`, including the exact RNG draw sequence), but all
/// working storage lives in `scratch` and per-app roles are recomputed
/// only when their inputs changed — so steady-state calls allocate
/// nothing and scale to thousands of apps. The
/// `matching-incremental-vs-rebuild` oracle in `copart-check` fuzzes this
/// equivalence against the from-scratch rebuild every epoch.
// The signature mirrors `get_next_system_state` plus the three output
// buffers; bundling them into a struct would only move the argument list.
#[allow(clippy::too_many_arguments)]
pub fn get_next_system_state_into(
    current: &SystemState,
    apps: &[AppClassification],
    budget: &WaysBudget,
    rng: &mut XorShift64Star,
    manage_llc: bool,
    manage_mba: bool,
    scratch: &mut ExploreScratch,
    state: &mut SystemState,
    events: &mut Vec<AppliedEvents>,
) -> StepStats {
    assert_eq!(
        current.allocs.len(),
        apps.len(),
        "state/classification mismatch"
    );
    let n = apps.len();
    state.allocs.clone_from(&current.allocs);
    events.clear();
    events.resize(n, AppliedEvents::default());

    let ExploreScratch {
        keys,
        roles,
        cfg,
        hits,
        misses,
        pool_llc,
        pool_mba,
        pool_any,
        consumers,
        consumer_apps,
        any_choice,
        assignment,
        chain: chain_scratch,
    } = scratch;

    if *cfg != Some((manage_llc, manage_mba)) {
        *cfg = Some((manage_llc, manage_mba));
        keys.clear();
    }
    if keys.len() != n {
        keys.clear();
        keys.resize(n, None);
    }
    roles.resize(n, AppRole::default());

    // --- Producer pools (lines 2–5), membership from the role cache. ---
    pool_llc.clear();
    pool_mba.clear();
    pool_any.clear();
    for (i, (app, alloc)) in apps.iter().zip(&current.allocs).enumerate() {
        let key = RoleKey {
            llc: app.llc,
            mba: app.mba,
            ways_above_floor: alloc.ways > 1,
            mba_above_min: alloc.mba > MbaLevel::MIN,
            mba_below_cap: alloc.mba < budget.mba_cap,
        };
        if keys[i] == Some(key) {
            *hits += 1;
        } else {
            keys[i] = Some(key);
            roles[i] = derive_role(key, manage_llc, manage_mba);
            *misses += 1;
        }
        match roles[i].producer {
            ProducerRole::Any => pool_any.push(Some(i)),
            ProducerRole::Llc => pool_llc.push(Some(i)),
            ProducerRole::Mba => pool_mba.push(Some(i)),
            ProducerRole::None => {}
        }
    }
    let spare_ways = budget.total_ways.saturating_sub(current.total_ways());
    if manage_llc {
        for _ in 0..spare_ways {
            pool_llc.push(None);
        }
    }
    // Identical order to the reference's stable sort: the comparator is a
    // total order whose only equal elements are interchangeable `None`s.
    let by_slowdown_asc = |a: &Option<usize>, b: &Option<usize>| match (a, b) {
        (None, None) => std::cmp::Ordering::Equal,
        (None, Some(_)) => std::cmp::Ordering::Less,
        (Some(_), None) => std::cmp::Ordering::Greater,
        (Some(x), Some(y)) => apps[*x]
            .slowdown
            .partial_cmp(&apps[*y].slowdown)
            .expect("slowdowns are not NaN")
            .then(x.cmp(y)),
    };
    pool_llc.sort_unstable_by(by_slowdown_asc);
    pool_mba.sort_unstable_by(by_slowdown_asc);
    pool_any.sort_unstable_by(by_slowdown_asc);

    // --- Consumers (lines 6–18), preference buffers reused in place. ---
    // RNG draws must mirror the reference exactly: one `gen_bool` per
    // dual-demand consumer, in app-index order.
    let mut nc = 0usize;
    for (i, app) in apps.iter().enumerate() {
        let (prefs, choice): (&[usize], Option<ResourceKind>) = match roles[i].consumer {
            ConsumerRole::None => continue,
            ConsumerRole::Both => {
                if rng.gen_bool(0.5) {
                    (&[CAT_LLC, CAT_MBA, CAT_ANY], None)
                } else {
                    (&[CAT_MBA, CAT_LLC, CAT_ANY], None)
                }
            }
            ConsumerRole::Llc => (&[CAT_LLC, CAT_ANY], Some(ResourceKind::Llc)),
            ConsumerRole::Mba => (&[CAT_MBA, CAT_ANY], Some(ResourceKind::MemoryBandwidth)),
        };
        if nc < consumers.len() {
            let c = &mut consumers[nc];
            c.priority = app.slowdown;
            c.preference.clear();
            c.preference.extend_from_slice(prefs);
            consumer_apps[nc] = i;
            any_choice[nc] = choice;
        } else {
            consumers.push(Consumer {
                priority: app.slowdown,
                preference: prefs.to_vec(),
            });
            consumer_apps.push(i);
            any_choice.push(choice);
        }
        nc += 1;
    }

    let capacities = [pool_llc.len(), pool_mba.len(), pool_any.len()];
    let matching_rounds =
        chain::allocate_into(&capacities, &consumers[..nc], assignment, chain_scratch);

    // --- Step two (lines 19–29): iterate the assignment directly — same
    // (category, then consumer-index) order the reference's `granted()`
    // lists produce, without materializing them. ---
    let mut cursor_llc = 0usize;
    let mut cursor_mba = 0usize;
    let mut cursor_any = 0usize;
    for t in [CAT_LLC, CAT_MBA, CAT_ANY] {
        for k in 0..nc {
            if assignment[k] != Some(t) {
                continue;
            }
            let c = consumer_apps[k];
            let kind = if t == CAT_LLC {
                ResourceKind::Llc
            } else if t == CAT_MBA {
                ResourceKind::MemoryBandwidth
            } else {
                match any_choice[k] {
                    Some(kind) => kind,
                    None => {
                        if rng.gen_bool(0.5) {
                            ResourceKind::Llc
                        } else {
                            ResourceKind::MemoryBandwidth
                        }
                    }
                }
            };
            let producer = match t {
                CAT_LLC => {
                    cursor_llc += 1;
                    pool_llc[cursor_llc - 1]
                }
                CAT_MBA => {
                    cursor_mba += 1;
                    pool_mba[cursor_mba - 1]
                }
                _ => {
                    cursor_any += 1;
                    pool_any[cursor_any - 1]
                }
            };
            if let Some(p) = producer {
                match kind {
                    ResourceKind::Llc => {
                        debug_assert!(state.allocs[p].ways > 1);
                        state.allocs[p].ways -= 1;
                        events[p].reclaimed_llc = true;
                    }
                    ResourceKind::MemoryBandwidth => {
                        state.allocs[p].mba = state.allocs[p].mba.step_down();
                        events[p].reclaimed_mba = true;
                    }
                }
            }
            match kind {
                ResourceKind::Llc => {
                    state.allocs[c].ways += 1;
                    events[c].granted_llc = true;
                }
                ResourceKind::MemoryBandwidth => {
                    state.allocs[c].mba = state.allocs[c].mba.step_up().min(budget.mba_cap);
                    events[c].granted_mba = true;
                }
            }
        }
    }

    let changed = events.iter().any(AppliedEvents::any) && *state != *current;
    StepStats {
        changed,
        matching_rounds,
    }
}

/// Runs one `getNextSystemState` step.
///
/// `manage_llc` / `manage_mba` restrict which resources the controller
/// may move — the CAT-only and MBA-only baselines pin one of them.
pub fn get_next_system_state(
    current: &SystemState,
    apps: &[AppClassification],
    budget: &WaysBudget,
    rng: &mut XorShift64Star,
    manage_llc: bool,
    manage_mba: bool,
) -> TransferOutcome {
    assert_eq!(
        current.allocs.len(),
        apps.len(),
        "state/classification mismatch"
    );
    let n = apps.len();
    let mut state = current.clone();
    let mut events = vec![AppliedEvents::default(); n];

    // --- Producer pools (lines 2–5 of Algorithm 2). ---
    // `None` entries are virtual producers representing unallocated budget
    // ways; reclaiming from them costs nobody anything.
    let mut pool_llc: Vec<Option<usize>> = Vec::new();
    let mut pool_mba: Vec<Option<usize>> = Vec::new();
    let mut pool_any: Vec<Option<usize>> = Vec::new();
    for (i, (app, alloc)) in apps.iter().zip(&current.allocs).enumerate() {
        let can_llc = manage_llc && app.llc == AppState::Supply && alloc.ways > 1;
        let can_mba = manage_mba && app.mba == AppState::Supply && alloc.mba > MbaLevel::MIN;
        match (can_llc, can_mba) {
            (true, true) => pool_any.push(Some(i)),
            (true, false) => pool_llc.push(Some(i)),
            (false, true) => pool_mba.push(Some(i)),
            (false, false) => {}
        }
    }
    let spare_ways = budget.total_ways.saturating_sub(current.total_ways());
    if manage_llc {
        for _ in 0..spare_ways {
            pool_llc.push(None);
        }
    }
    // Producers are consumed lowest-slowdown first (virtual producers
    // first of all — they are free).
    let by_slowdown_asc = |a: &Option<usize>, b: &Option<usize>| match (a, b) {
        (None, None) => std::cmp::Ordering::Equal,
        (None, Some(_)) => std::cmp::Ordering::Less,
        (Some(_), None) => std::cmp::Ordering::Greater,
        (Some(x), Some(y)) => apps[*x]
            .slowdown
            .partial_cmp(&apps[*y].slowdown)
            .expect("slowdowns are not NaN")
            .then(x.cmp(y)),
    };
    pool_llc.sort_by(by_slowdown_asc);
    pool_mba.sort_by(by_slowdown_asc);
    pool_any.sort_by(by_slowdown_asc);

    // --- Consumers and their preference lists (lines 6–18). ---
    let mut consumer_apps: Vec<usize> = Vec::new();
    let mut consumers: Vec<Consumer> = Vec::new();
    // For ANY-demand consumers, the random specific-type priority (§5.4.2:
    // randomness avoids local optima).
    let mut any_choice: Vec<Option<ResourceKind>> = Vec::new();
    for (i, (app, alloc)) in apps.iter().zip(&current.allocs).enumerate() {
        let wants_llc = manage_llc && app.llc == AppState::Demand;
        let wants_mba = manage_mba && app.mba == AppState::Demand && alloc.mba < budget.mba_cap;
        let (preference, choice) = match (wants_llc, wants_mba) {
            (true, true) => {
                if rng.gen_bool(0.5) {
                    (vec![CAT_LLC, CAT_MBA, CAT_ANY], None)
                } else {
                    (vec![CAT_MBA, CAT_LLC, CAT_ANY], None)
                }
            }
            (true, false) => (vec![CAT_LLC, CAT_ANY], Some(ResourceKind::Llc)),
            (false, true) => (vec![CAT_MBA, CAT_ANY], Some(ResourceKind::MemoryBandwidth)),
            (false, false) => continue,
        };
        consumer_apps.push(i);
        any_choice.push(choice);
        consumers.push(Consumer {
            priority: app.slowdown,
            preference,
        });
    }

    let capacities = [pool_llc.len(), pool_mba.len(), pool_any.len()];
    let allocation = chain::allocate(&capacities, &consumers);

    // --- Step two: pair consumers with producers and transfer units
    // (lines 19–29). ---
    let mut cursor_llc = 0usize;
    let mut cursor_mba = 0usize;
    let mut cursor_any = 0usize;
    for t in [CAT_LLC, CAT_MBA, CAT_ANY] {
        for k in allocation.granted(t) {
            let c = consumer_apps[k];
            let kind = if t == CAT_LLC {
                ResourceKind::Llc
            } else if t == CAT_MBA {
                ResourceKind::MemoryBandwidth
            } else {
                match any_choice[k] {
                    Some(kind) => kind,
                    // Both the consumer and the producer accept either
                    // resource: pick randomly (search randomness, §5.4.2).
                    None => {
                        if rng.gen_bool(0.5) {
                            ResourceKind::Llc
                        } else {
                            ResourceKind::MemoryBandwidth
                        }
                    }
                }
            };
            let producer = match t {
                CAT_LLC => {
                    cursor_llc += 1;
                    pool_llc[cursor_llc - 1]
                }
                CAT_MBA => {
                    cursor_mba += 1;
                    pool_mba[cursor_mba - 1]
                }
                _ => {
                    cursor_any += 1;
                    pool_any[cursor_any - 1]
                }
            };
            // Reclaim from the producer.
            if let Some(p) = producer {
                match kind {
                    ResourceKind::Llc => {
                        debug_assert!(state.allocs[p].ways > 1);
                        state.allocs[p].ways -= 1;
                        events[p].reclaimed_llc = true;
                    }
                    ResourceKind::MemoryBandwidth => {
                        state.allocs[p].mba = state.allocs[p].mba.step_down();
                        events[p].reclaimed_mba = true;
                    }
                }
            }
            // Grant to the consumer.
            match kind {
                ResourceKind::Llc => {
                    state.allocs[c].ways += 1;
                    events[c].granted_llc = true;
                }
                ResourceKind::MemoryBandwidth => {
                    state.allocs[c].mba = state.allocs[c].mba.step_up().min(budget.mba_cap);
                    events[c].granted_mba = true;
                }
            }
        }
    }

    let changed = events.iter().any(AppliedEvents::any) && state != *current;
    TransferOutcome {
        state,
        events,
        changed,
        matching_rounds: allocation.rounds,
    }
}

/// The greedy baseline allocator (ablation of the HR matching design
/// choice): performs at most **one** transfer per period — the
/// highest-slowdown consumer takes one unit of a demanded resource from
/// the lowest-slowdown producer that can supply it (spare budget ways
/// count as free producers). No victim chaining, no randomization.
pub fn get_next_system_state_greedy(
    current: &SystemState,
    apps: &[AppClassification],
    budget: &WaysBudget,
    manage_llc: bool,
    manage_mba: bool,
) -> TransferOutcome {
    assert_eq!(
        current.allocs.len(),
        apps.len(),
        "state/classification mismatch"
    );
    let n = apps.len();
    let mut state = current.clone();
    let mut events = vec![AppliedEvents::default(); n];

    // Consumers, highest slowdown first.
    let mut consumers: Vec<usize> = (0..n)
        .filter(|&i| {
            (manage_llc && apps[i].llc == AppState::Demand)
                || (manage_mba
                    && apps[i].mba == AppState::Demand
                    && current.allocs[i].mba < budget.mba_cap)
        })
        .collect();
    consumers.sort_by(|&a, &b| {
        apps[b]
            .slowdown
            .partial_cmp(&apps[a].slowdown)
            .expect("slowdowns are not NaN")
            .then(a.cmp(&b))
    });

    let spare_ways = budget.total_ways.saturating_sub(current.total_ways());
    let min_producer = |kind: ResourceKind, state: &SystemState| -> Option<usize> {
        (0..n)
            .filter(|&i| match kind {
                ResourceKind::Llc => {
                    manage_llc && apps[i].llc == AppState::Supply && state.allocs[i].ways > 1
                }
                ResourceKind::MemoryBandwidth => {
                    manage_mba
                        && apps[i].mba == AppState::Supply
                        && state.allocs[i].mba > MbaLevel::MIN
                }
            })
            .min_by(|&a, &b| {
                apps[a]
                    .slowdown
                    .partial_cmp(&apps[b].slowdown)
                    .expect("slowdowns are not NaN")
                    .then(a.cmp(&b))
            })
    };

    for c in consumers {
        // Prefer LLC when both are demanded (deterministic greedy).
        let wants: Vec<ResourceKind> = [
            (
                manage_llc && apps[c].llc == AppState::Demand,
                ResourceKind::Llc,
            ),
            (
                manage_mba
                    && apps[c].mba == AppState::Demand
                    && current.allocs[c].mba < budget.mba_cap,
                ResourceKind::MemoryBandwidth,
            ),
        ]
        .into_iter()
        .filter_map(|(want, kind)| want.then_some(kind))
        .collect();
        for kind in wants {
            if kind == ResourceKind::Llc && spare_ways > 0 {
                state.allocs[c].ways += 1;
                events[c].granted_llc = true;
                return TransferOutcome {
                    state,
                    events,
                    changed: true,
                    matching_rounds: 0,
                };
            }
            if let Some(p) = min_producer(kind, &state) {
                match kind {
                    ResourceKind::Llc => {
                        state.allocs[p].ways -= 1;
                        state.allocs[c].ways += 1;
                        events[p].reclaimed_llc = true;
                        events[c].granted_llc = true;
                    }
                    ResourceKind::MemoryBandwidth => {
                        state.allocs[p].mba = state.allocs[p].mba.step_down();
                        state.allocs[c].mba = state.allocs[c].mba.step_up().min(budget.mba_cap);
                        events[p].reclaimed_mba = true;
                        events[c].granted_mba = true;
                    }
                }
                return TransferOutcome {
                    state,
                    events,
                    changed: true,
                    matching_rounds: 0,
                };
            }
        }
    }
    TransferOutcome {
        state,
        events,
        changed: false,
        matching_rounds: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::AllocationState;

    fn budget() -> WaysBudget {
        WaysBudget::full_machine(11)
    }

    fn rng() -> XorShift64Star {
        XorShift64Star::seed_from_u64(7)
    }

    fn alloc(ways: u32, mba: u8) -> AllocationState {
        AllocationState {
            ways,
            mba: MbaLevel::new(mba),
        }
    }

    fn class(llc: AppState, mba: AppState, slowdown: f64) -> AppClassification {
        AppClassification { llc, mba, slowdown }
    }

    #[test]
    fn llc_way_moves_from_supplier_to_demander() {
        let current = SystemState {
            allocs: vec![alloc(5, 100), alloc(6, 100)],
        };
        let apps = [
            class(AppState::Supply, AppState::Maintain, 1.0),
            class(AppState::Demand, AppState::Maintain, 2.0),
        ];
        let out = get_next_system_state(&current, &apps, &budget(), &mut rng(), true, true);
        assert!(out.changed);
        assert_eq!(out.state.allocs[0].ways, 4);
        assert_eq!(out.state.allocs[1].ways, 7);
        assert!(out.events[0].reclaimed_llc);
        assert!(out.events[1].granted_llc);
        assert_eq!(out.state.total_ways(), 11, "ways are conserved");
    }

    #[test]
    fn mba_step_moves_between_apps() {
        let current = SystemState {
            allocs: vec![alloc(5, 100), alloc(6, 50)],
        };
        let apps = [
            class(AppState::Maintain, AppState::Supply, 1.0),
            class(AppState::Maintain, AppState::Demand, 2.0),
        ];
        let out = get_next_system_state(&current, &apps, &budget(), &mut rng(), true, true);
        assert!(out.changed);
        assert_eq!(out.state.allocs[0].mba.percent(), 90);
        assert_eq!(out.state.allocs[1].mba.percent(), 60);
        assert!(out.events[0].reclaimed_mba);
        assert!(out.events[1].granted_mba);
    }

    #[test]
    fn oversubscribed_resource_goes_to_higher_slowdown() {
        // One LLC supplier, two demanders: the slower app must win.
        let current = SystemState {
            allocs: vec![alloc(4, 100), alloc(3, 100), alloc(4, 100)],
        };
        let apps = [
            class(AppState::Supply, AppState::Maintain, 1.0),
            class(AppState::Demand, AppState::Maintain, 1.2),
            class(AppState::Demand, AppState::Maintain, 3.0),
        ];
        let out = get_next_system_state(&current, &apps, &budget(), &mut rng(), true, true);
        assert_eq!(out.state.allocs[2].ways, 5, "highest slowdown wins");
        assert_eq!(out.state.allocs[1].ways, 3, "lower slowdown waits");
        assert_eq!(out.state.allocs[0].ways, 3);
    }

    #[test]
    fn lowest_slowdown_producer_gives_up_first() {
        let current = SystemState {
            allocs: vec![alloc(4, 100), alloc(3, 100), alloc(4, 100)],
        };
        let apps = [
            class(AppState::Supply, AppState::Maintain, 1.5),
            class(AppState::Supply, AppState::Maintain, 1.0),
            class(AppState::Demand, AppState::Maintain, 3.0),
        ];
        let out = get_next_system_state(&current, &apps, &budget(), &mut rng(), true, true);
        assert_eq!(out.state.allocs[1].ways, 2, "least-slowed producer pays");
        assert_eq!(out.state.allocs[0].ways, 4);
        assert_eq!(out.state.allocs[2].ways, 5);
    }

    #[test]
    fn no_participants_means_converged() {
        let current = SystemState {
            allocs: vec![alloc(5, 100), alloc(6, 100)],
        };
        let apps = [
            class(AppState::Maintain, AppState::Maintain, 1.0),
            class(AppState::Maintain, AppState::Maintain, 1.1),
        ];
        let out = get_next_system_state(&current, &apps, &budget(), &mut rng(), true, true);
        assert!(!out.changed);
        assert_eq!(out.state, current);
    }

    #[test]
    fn demand_without_supply_changes_nothing() {
        let current = SystemState {
            allocs: vec![alloc(5, 100), alloc(6, 100)],
        };
        let apps = [
            class(AppState::Demand, AppState::Maintain, 2.0),
            class(AppState::Demand, AppState::Maintain, 1.5),
        ];
        let out = get_next_system_state(&current, &apps, &budget(), &mut rng(), true, true);
        assert!(!out.changed, "nobody supplies, nothing moves");
    }

    #[test]
    fn spare_budget_ways_are_free_suppliers() {
        let current = SystemState {
            allocs: vec![alloc(2, 100), alloc(2, 100)],
        };
        let apps = [
            class(AppState::Demand, AppState::Maintain, 2.0),
            class(AppState::Maintain, AppState::Maintain, 1.0),
        ];
        let out = get_next_system_state(&current, &apps, &budget(), &mut rng(), true, true);
        assert!(out.changed);
        assert_eq!(out.state.allocs[0].ways, 3, "took a spare way");
        assert_eq!(out.state.allocs[1].ways, 2, "nobody was robbed");
        assert!(!out.events[1].reclaimed_llc);
    }

    #[test]
    fn producer_at_floor_cannot_supply() {
        let current = SystemState {
            allocs: vec![alloc(1, 100), alloc(10, 100)],
        };
        let apps = [
            class(AppState::Supply, AppState::Maintain, 1.0),
            class(AppState::Demand, AppState::Maintain, 2.0),
        ];
        let out = get_next_system_state(&current, &apps, &budget(), &mut rng(), true, true);
        assert!(!out.changed, "a single way can never be reclaimed");
    }

    #[test]
    fn consumer_at_mba_cap_cannot_demand_more() {
        let cap_budget = WaysBudget {
            first_way: 0,
            total_ways: 11,
            mba_cap: MbaLevel::new(40),
        };
        let current = SystemState {
            allocs: vec![alloc(5, 40), alloc(6, 40)],
        };
        let apps = [
            class(AppState::Maintain, AppState::Demand, 2.0),
            class(AppState::Maintain, AppState::Supply, 1.0),
        ];
        let out = get_next_system_state(&current, &apps, &cap_budget, &mut rng(), true, true);
        assert!(!out.changed, "already at the budget's MBA cap");
    }

    #[test]
    fn cat_only_never_touches_mba() {
        let current = SystemState {
            allocs: vec![alloc(5, 100), alloc(6, 50)],
        };
        let apps = [
            class(AppState::Supply, AppState::Supply, 1.0),
            class(AppState::Demand, AppState::Demand, 2.0),
        ];
        let out = get_next_system_state(&current, &apps, &budget(), &mut rng(), true, false);
        assert!(out.changed);
        assert_eq!(out.state.allocs[0].mba.percent(), 100);
        assert_eq!(out.state.allocs[1].mba.percent(), 50);
        assert_eq!(out.state.allocs[1].ways, 7);
    }

    #[test]
    fn mba_only_never_touches_ways() {
        let current = SystemState {
            allocs: vec![alloc(5, 100), alloc(6, 50)],
        };
        let apps = [
            class(AppState::Supply, AppState::Supply, 1.0),
            class(AppState::Demand, AppState::Demand, 2.0),
        ];
        let out = get_next_system_state(&current, &apps, &budget(), &mut rng(), false, true);
        assert!(out.changed);
        assert_eq!(out.state.allocs[0].ways, 5);
        assert_eq!(out.state.allocs[1].ways, 6);
        assert_eq!(out.state.allocs[1].mba.percent(), 60);
        assert_eq!(out.state.allocs[0].mba.percent(), 90);
    }

    #[test]
    fn any_supplier_serves_specific_demand() {
        let current = SystemState {
            allocs: vec![alloc(6, 80), alloc(5, 100)],
        };
        let apps = [
            class(AppState::Supply, AppState::Supply, 1.0), // ANY producer.
            class(AppState::Demand, AppState::Maintain, 2.0), // Wants LLC.
        ];
        let out = get_next_system_state(&current, &apps, &budget(), &mut rng(), true, true);
        assert!(out.changed);
        assert_eq!(out.state.allocs[1].ways, 6);
        assert_eq!(out.state.allocs[0].ways, 5);
        assert_eq!(
            out.state.allocs[0].mba.percent(),
            80,
            "the ANY producer paid in LLC, not MBA"
        );
    }

    /// Invariants on random inputs: ways conserved within the budget,
    /// every allocation stays valid, and transfers are unit-sized.
    /// Seeded sweep over the same input space the old property test
    /// sampled (instance shape and the explorer's own seed both vary).
    #[test]
    fn transfers_preserve_invariants() {
        let mut gen = XorShift64Star::seed_from_u64(0x7_2A57);
        for seed in 0u64..500 {
            let budget = budget();
            let mut allocs = Vec::new();
            let mut apps = Vec::new();
            let mut total = 0u32;
            for _ in 0..gen.gen_range(2..6usize) {
                let ways = gen.gen_range(1..6u32);
                let mba10 = gen.gen_range(1..=10u8);
                let llc_s = gen.gen_range(0..3u8);
                let mba_s = gen.gen_range(0..3u8);
                let slow100 = gen.gen_range(10..400u32);
                if total + ways > budget.total_ways {
                    break;
                }
                total += ways;
                allocs.push(alloc(ways, mba10 * 10));
                let st = |k: u8| match k {
                    0 => AppState::Supply,
                    1 => AppState::Maintain,
                    _ => AppState::Demand,
                };
                apps.push(class(st(llc_s), st(mba_s), f64::from(slow100) / 100.0));
            }
            if allocs.len() < 2 {
                continue;
            }
            let current = SystemState { allocs };
            let mut r = XorShift64Star::seed_from_u64(seed);
            let out = get_next_system_state(&current, &apps, &budget, &mut r, true, true);
            assert!(out.state.is_valid(&budget), "invalid: {:?}", out.state);
            assert!(out.state.total_ways() <= budget.total_ways);
            for (before, after) in current.allocs.iter().zip(&out.state.allocs) {
                let dw = i64::from(after.ways) - i64::from(before.ways);
                assert!(dw.abs() <= 1, "way transfers are unit-sized");
                let dm = i16::from(after.mba.percent()) - i16::from(before.mba.percent());
                assert!(dm.abs() <= 10, "MBA transfers are one step");
            }
            // Ways are conserved up to spare-budget grants.
            assert!(out.state.total_ways() >= current.total_ways());
            let spare = budget.total_ways - current.total_ways();
            assert!(out.state.total_ways() - current.total_ways() <= spare);
        }
    }

    /// The incremental in-place step is byte-identical to the
    /// from-scratch rebuild — state, events, changed, rounds — across
    /// chained epochs with one persistent scratch, while classifications
    /// and allocations evolve (so the role cache sees hits and misses).
    #[test]
    fn incremental_step_matches_rebuild_across_epochs() {
        let mut gen = XorShift64Star::seed_from_u64(0x001A_C5E7);
        let st = |k: u8| match k {
            0 => AppState::Supply,
            1 => AppState::Maintain,
            _ => AppState::Demand,
        };
        for seed in 0u64..60 {
            let budget = budget();
            let n = gen.gen_range(2..6usize);
            let ways_each = budget.total_ways / n as u32;
            let mut current = SystemState {
                allocs: (0..n).map(|_| alloc(ways_each, 100)).collect(),
            };
            let mut apps: Vec<AppClassification> = (0..n)
                .map(|_| {
                    class(
                        st(gen.gen_range(0..3u8)),
                        st(gen.gen_range(0..3u8)),
                        f64::from(gen.gen_range(10..400u32)) / 100.0,
                    )
                })
                .collect();
            let mut scratch = ExploreScratch::default();
            let mut state = SystemState { allocs: Vec::new() };
            let mut events = Vec::new();
            let mut rng_ref = XorShift64Star::seed_from_u64(seed);
            let mut rng_inc = XorShift64Star::seed_from_u64(seed);
            for _ in 0..12 {
                let reference =
                    get_next_system_state(&current, &apps, &budget, &mut rng_ref, true, true);
                let stats = get_next_system_state_into(
                    &current,
                    &apps,
                    &budget,
                    &mut rng_inc,
                    true,
                    true,
                    &mut scratch,
                    &mut state,
                    &mut events,
                );
                assert_eq!(state, reference.state);
                assert_eq!(events, reference.events);
                assert_eq!(stats.changed, reference.changed);
                assert_eq!(stats.matching_rounds, reference.matching_rounds);
                // Chain: adopt the outcome and mutate one app's inputs.
                current = reference.state;
                let i = gen.gen_range(0..n);
                apps[i] = class(
                    st(gen.gen_range(0..3u8)),
                    st(gen.gen_range(0..3u8)),
                    f64::from(gen.gen_range(10..400u32)) / 100.0,
                );
            }
            assert!(scratch.cache_hits() > 0, "cache never hit at seed {seed}");
        }
    }
}

#[cfg(test)]
mod greedy_tests {
    use super::*;
    use crate::state::AllocationState;
    use copart_rdt::MbaLevel;

    fn alloc(ways: u32, mba: u8) -> AllocationState {
        AllocationState {
            ways,
            mba: MbaLevel::new(mba),
        }
    }

    fn class(llc: AppState, mba: AppState, slowdown: f64) -> AppClassification {
        AppClassification { llc, mba, slowdown }
    }

    fn budget() -> WaysBudget {
        WaysBudget::full_machine(11)
    }

    #[test]
    fn greedy_moves_exactly_one_unit() {
        let current = SystemState {
            allocs: vec![alloc(4, 100), alloc(3, 100), alloc(4, 100)],
        };
        // Two consumers, one supplier: only the slowest consumer is served
        // in a single greedy step.
        let apps = [
            class(AppState::Supply, AppState::Maintain, 1.0),
            class(AppState::Demand, AppState::Maintain, 2.0),
            class(AppState::Demand, AppState::Maintain, 3.0),
        ];
        let out = get_next_system_state_greedy(&current, &apps, &budget(), true, true);
        assert!(out.changed);
        assert_eq!(out.state.allocs[2].ways, 5, "slowest consumer first");
        assert_eq!(out.state.allocs[1].ways, 3, "second consumer waits");
        assert_eq!(out.state.allocs[0].ways, 3);
        let transfers: usize = out
            .events
            .iter()
            .map(|e| {
                usize::from(e.granted_llc)
                    + usize::from(e.granted_mba)
                    + usize::from(e.reclaimed_llc)
                    + usize::from(e.reclaimed_mba)
            })
            .sum();
        assert_eq!(transfers, 2, "one grant + one reclaim");
    }

    #[test]
    fn greedy_uses_spare_ways_before_robbing_producers() {
        let current = SystemState {
            allocs: vec![alloc(2, 100), alloc(2, 100)],
        };
        let apps = [
            class(AppState::Demand, AppState::Maintain, 2.0),
            class(AppState::Supply, AppState::Maintain, 1.0),
        ];
        let out = get_next_system_state_greedy(&current, &apps, &budget(), true, true);
        assert!(out.changed);
        assert_eq!(out.state.allocs[0].ways, 3);
        assert_eq!(
            out.state.allocs[1].ways, 2,
            "producer untouched while spare exists"
        );
    }

    #[test]
    fn greedy_falls_back_to_mba_when_no_llc_supply() {
        let current = SystemState {
            allocs: vec![alloc(6, 50), alloc(5, 100)],
        };
        let apps = [
            class(AppState::Demand, AppState::Demand, 2.0),
            class(AppState::Maintain, AppState::Supply, 1.0),
        ];
        let out = get_next_system_state_greedy(&current, &apps, &budget(), true, true);
        assert!(out.changed);
        assert_eq!(out.state.allocs[0].ways, 6, "no LLC producer available");
        assert_eq!(out.state.allocs[0].mba.percent(), 60);
        assert_eq!(out.state.allocs[1].mba.percent(), 90);
    }

    #[test]
    fn greedy_converges_when_nothing_moves() {
        let current = SystemState {
            allocs: vec![alloc(6, 50), alloc(5, 100)],
        };
        let apps = [
            class(AppState::Maintain, AppState::Maintain, 2.0),
            class(AppState::Maintain, AppState::Maintain, 1.0),
        ];
        let out = get_next_system_state_greedy(&current, &apps, &budget(), true, true);
        assert!(!out.changed);
        assert_eq!(out.state, current);
    }
}
