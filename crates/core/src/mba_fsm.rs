//! The memory-bandwidth characteristic classifier FSM (Figure 9).
//!
//! Consumed through the classification layer's [`crate::classifier::DualFsmClassifier`],
//! which steps this FSM and its LLC sibling in lockstep (DESIGN.md §12).
//!
//! Structured like the LLC classifier (§5.3), but driven by the *memory
//! traffic ratio* — the application's LLC miss rate divided by STREAM's at
//! the same MBA level:
//!
//! * ratio below γ ⇒ the application barely touches memory: `Supply`;
//! * ratio above Γ ⇒ the application pushes a STREAM-like share of
//!   traffic and wants headroom: `Demand`;
//! * in between, performance deltas arbitrate, with the paper's explicit
//!   cross-resource rule: a `Demand` application stays in `Demand` when a
//!   small performance gain followed an **LLC** grant, because that gain
//!   says nothing about its bandwidth appetite.
//!
//! The reconstructed diagram (quiet = ratio < γ; heavy = ratio ≥ Γ):
//!
//! ```text
//!            heavy, or moderate after an LLC grant / no grant
//!                 ┌────┐
//!                 ▼    │
//!   ┌─────────► DEMAND ─┐
//!   │             │     │ moderate && MBA grant bought < δ_P
//!   │ heavy, or   │quiet▼
//!   │ MBA reclaim │   MAINTAIN ◄─┐
//!   │ && hurt     │     │  │     │ moderate
//!   │             ▼     │  └─────┘
//!   │  ┌─────► SUPPLY ◄─┘ quiet
//!   │  │ quiet    │
//!   │  └──────────┤ moderate (→ MAINTAIN) / heavy or painful reclaim (→ DEMAND)
//!   └─────────────┘
//! ```
//!
//! The row-by-row table lives in `tests/fsm_tables.rs`.

use crate::fsm::{AppState, Observation, ResourceEvent};
use crate::CoPartParams;

/// Per-application memory-bandwidth classifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MbaClassifier {
    state: AppState,
}

impl MbaClassifier {
    /// Starts in the given initial state (chosen from profiling data).
    pub fn new(initial: AppState) -> MbaClassifier {
        MbaClassifier { state: initial }
    }

    /// The current state.
    pub fn state(&self) -> AppState {
        self.state
    }

    /// Forces a state (used when the manager re-profiles).
    pub fn reset(&mut self, state: AppState) {
        self.state = state;
    }

    /// Applies one period's observation and returns the new state.
    pub fn update(&mut self, p: &CoPartParams, obs: &Observation) -> AppState {
        let quiet = obs.traffic_ratio < p.traffic_ratio_supply;
        let heavy = obs.traffic_ratio >= p.traffic_ratio_demand;
        let improved = obs.perf_delta >= p.delta_p;
        let hurt = obs.perf_delta <= -p.delta_p;

        self.state = match self.state {
            AppState::Demand => {
                let demoting_grant = obs.event == ResourceEvent::GrantedMba
                    || (!p.cross_resource_awareness && obs.event == ResourceEvent::GrantedLlc);
                if quiet {
                    AppState::Supply
                } else if heavy {
                    AppState::Demand
                } else if demoting_grant && !improved {
                    // More bandwidth bought little and the traffic is
                    // moderate: settle.
                    AppState::Maintain
                } else {
                    // §5.3: stay in Demand when the small improvement
                    // followed an LLC grant (or nothing happened) — the
                    // evidence does not speak about bandwidth.
                    AppState::Demand
                }
            }
            AppState::Maintain => {
                if heavy || (obs.event == ResourceEvent::ReclaimedMba && hurt) {
                    AppState::Demand
                } else if quiet {
                    AppState::Supply
                } else {
                    AppState::Maintain
                }
            }
            AppState::Supply => {
                if heavy || (obs.event == ResourceEvent::ReclaimedMba && hurt) {
                    AppState::Demand
                } else if quiet {
                    AppState::Supply
                } else {
                    AppState::Maintain
                }
            }
        };
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> CoPartParams {
        CoPartParams::default()
    }

    fn obs(perf_delta: f64, traffic_ratio: f64, event: ResourceEvent) -> Observation {
        Observation {
            perf_delta,
            access_rate: 1.0e8,
            miss_ratio: 0.2,
            traffic_ratio,
            event,
        }
    }

    #[test]
    fn demand_holds_under_heavy_traffic() {
        let mut c = MbaClassifier::new(AppState::Demand);
        assert_eq!(
            c.update(&p(), &obs(0.0, 0.6, ResourceEvent::GrantedMba)),
            AppState::Demand
        );
    }

    #[test]
    fn demand_to_maintain_on_diminishing_mba_returns() {
        let mut c = MbaClassifier::new(AppState::Demand);
        assert_eq!(
            c.update(&p(), &obs(0.01, 0.2, ResourceEvent::GrantedMba)),
            AppState::Maintain
        );
    }

    #[test]
    fn demand_survives_small_gain_after_llc_grant() {
        // The paper's explicit cross-resource awareness rule.
        let mut c = MbaClassifier::new(AppState::Demand);
        assert_eq!(
            c.update(&p(), &obs(0.01, 0.2, ResourceEvent::GrantedLlc)),
            AppState::Demand
        );
    }

    #[test]
    fn demand_to_supply_when_quiet() {
        let mut c = MbaClassifier::new(AppState::Demand);
        assert_eq!(
            c.update(&p(), &obs(0.0, 0.05, ResourceEvent::None)),
            AppState::Supply
        );
    }

    #[test]
    fn maintain_to_demand_on_heavy_traffic_or_painful_reclaim() {
        let mut c = MbaClassifier::new(AppState::Maintain);
        assert_eq!(
            c.update(&p(), &obs(0.0, 0.5, ResourceEvent::None)),
            AppState::Demand
        );
        let mut c2 = MbaClassifier::new(AppState::Maintain);
        assert_eq!(
            c2.update(&p(), &obs(-0.2, 0.2, ResourceEvent::ReclaimedMba)),
            AppState::Demand
        );
    }

    #[test]
    fn maintain_holds_in_the_band() {
        let mut c = MbaClassifier::new(AppState::Maintain);
        assert_eq!(
            c.update(&p(), &obs(0.0, 0.2, ResourceEvent::None)),
            AppState::Maintain
        );
    }

    #[test]
    fn supply_to_demand_when_reclaim_backfires() {
        let mut c = MbaClassifier::new(AppState::Supply);
        assert_eq!(
            c.update(&p(), &obs(-0.1, 0.05, ResourceEvent::ReclaimedMba)),
            AppState::Demand
        );
    }

    #[test]
    fn supply_escalates_with_traffic() {
        let mut c = MbaClassifier::new(AppState::Supply);
        assert_eq!(
            c.update(&p(), &obs(0.0, 0.2, ResourceEvent::None)),
            AppState::Maintain
        );
        let mut c2 = MbaClassifier::new(AppState::Supply);
        assert_eq!(
            c2.update(&p(), &obs(0.0, 0.9, ResourceEvent::None)),
            AppState::Demand
        );
    }

    #[test]
    fn supply_holds_while_quiet() {
        let mut c = MbaClassifier::new(AppState::Supply);
        assert_eq!(
            c.update(&p(), &obs(0.4, 0.01, ResourceEvent::None)),
            AppState::Supply
        );
    }

    const STATES: [AppState; 3] = [AppState::Supply, AppState::Maintain, AppState::Demand];

    /// Determinism and closure over the state set, swept over a seeded
    /// random sample of the observation space.
    #[test]
    fn update_is_deterministic() {
        let mut rng = copart_rng::XorShift64Star::seed_from_u64(0xBA_F5);
        for _ in 0..500 {
            let initial = STATES[rng.gen_range(0..3usize)];
            let perf = rng.gen_range(-1.0..1.0);
            let ratio = rng.gen_range(0.0..2.0);
            let event = match rng.gen_range(0..5u8) {
                0 => ResourceEvent::None,
                1 => ResourceEvent::GrantedLlc,
                2 => ResourceEvent::GrantedMba,
                3 => ResourceEvent::ReclaimedLlc,
                _ => ResourceEvent::ReclaimedMba,
            };
            let o = obs(perf, ratio, event);
            let mut a = MbaClassifier::new(initial);
            let mut b = MbaClassifier::new(initial);
            assert_eq!(a.update(&p(), &o), b.update(&p(), &o));
        }
    }

    /// STREAM-class traffic always demands (no state escapes it).
    #[test]
    fn heavy_traffic_always_demands() {
        let mut rng = copart_rng::XorShift64Star::seed_from_u64(0xBA_F6);
        for _ in 0..200 {
            let initial = STATES[rng.gen_range(0..3usize)];
            let perf = rng.gen_range(-1.0..1.0);
            let o = obs(perf, 0.95, ResourceEvent::None);
            let mut c = MbaClassifier::new(initial);
            assert_eq!(c.update(&p(), &o), AppState::Demand);
        }
    }
}
