//! The sensing layer: per-application counter sampling with
//! degraded-mode EWMA bridging.
//!
//! The first stage of the control-plane pipeline (DESIGN.md §12). Each
//! managed application owns one sensor; every epoch the driver hands it
//! the raw counter-read result and gets back a [`SensorReading`] — the
//! period rates when the read landed, or a *degraded* marker when it
//! dropped out. The sensor also maintains the EWMA'd rate estimates the
//! trace falls back on during dropouts, so a counter failure never
//! crashes (or blinds) the resource manager.

use copart_rdt::RdtError;
use copart_telemetry::{CounterSnapshot, Ewma, Rates, SlidingWindow};

/// Smoothing weight for the degraded-mode rate estimates. Biased toward
/// recent samples: the estimate is only consulted while counters are
/// unavailable, so it should track the latest behaviour, not the whole
/// run's average.
const DEGRADED_EWMA_ALPHA: f64 = 0.3;

/// EWMA'd copies of an application's per-epoch rates.
///
/// When a counter read drops out the runtime cannot measure this epoch,
/// but it still owes the trace (and any consumer of the period record) a
/// plausible per-application sample. These smoothers bridge the gap: they
/// are fed every successfully measured epoch and consulted only on
/// dropouts.
#[derive(Debug)]
struct RatesEwma {
    ips: Ewma,
    accesses: Ewma,
    misses: Ewma,
    miss_ratio: Ewma,
}

impl RatesEwma {
    fn new() -> RatesEwma {
        RatesEwma {
            ips: Ewma::new(DEGRADED_EWMA_ALPHA),
            accesses: Ewma::new(DEGRADED_EWMA_ALPHA),
            misses: Ewma::new(DEGRADED_EWMA_ALPHA),
            miss_ratio: Ewma::new(DEGRADED_EWMA_ALPHA),
        }
    }

    fn update(&mut self, r: &Rates) {
        // `Ewma::update` returns `None` until a finite sample lands; the
        // smoothers are consulted through `rates()` below, which already
        // propagates that absence, so the per-call results are unneeded.
        let _ = self.ips.update(r.ips);
        let _ = self.accesses.update(r.llc_accesses_per_sec);
        let _ = self.misses.update(r.llc_misses_per_sec);
        let _ = self.miss_ratio.update(r.miss_ratio);
    }

    /// The bridged estimate — `None` until every component smoother has
    /// observed at least one finite sample, so a pre-warm dropout is
    /// reported as "nothing measured yet" instead of a fabricated zero
    /// rate.
    fn rates(&self) -> Option<Rates> {
        Some(Rates {
            ips: self.ips.value()?,
            llc_accesses_per_sec: self.accesses.value()?,
            llc_misses_per_sec: self.misses.value()?,
            miss_ratio: self.miss_ratio.value()?,
        })
    }

    fn reset(&mut self) {
        self.ips.reset();
        self.accesses.reset();
        self.misses.reset();
        self.miss_ratio.reset();
    }
}

/// What the sensing layer reports for one application in one epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SensorReading {
    /// Rates over the last period — present only once two good samples
    /// straddle it (startup and clock stalls measure nothing).
    pub rates: Option<Rates>,
    /// Whether this epoch's counter read dropped out. The application is
    /// *degraded* for the period: classifiers and the slowdown estimate
    /// hold their previous values.
    pub dropped: bool,
}

/// One application's sensing seam in the control-plane pipeline.
///
/// # Examples
///
/// ```
/// use copart_core::{Sensor, WindowedSensor};
/// use copart_rdt::RdtError;
/// use copart_telemetry::CounterSnapshot;
///
/// let snap = |t_s: u64| CounterSnapshot {
///     timestamp_ns: t_s * 1_000_000_000,
///     instructions: t_s * 2_000_000_000,
///     cycles: t_s * 3_000_000_000,
///     llc_accesses: t_s * 10_000_000,
///     llc_misses: t_s * 1_000_000,
/// };
/// let mut sensor = WindowedSensor::new(8);
/// // A single sample cannot span a period: nothing to report yet.
/// assert!(sensor.ingest(Ok(snap(1))).rates.is_none());
/// // Two samples straddle one second: 2e9 instructions retired in it.
/// let reading = sensor.ingest(Ok(snap(2)));
/// assert_eq!(reading.rates.unwrap().ips, 2e9);
/// // A dropout degrades the epoch; the EWMA estimate bridges display.
/// let dropped = sensor.ingest(Err(RdtError::Busy("counter read")));
/// assert!(dropped.dropped);
/// assert!(sensor.display_rates(&dropped).ips > 0.0);
/// ```
pub trait Sensor {
    /// Ingests one epoch's raw counter-read result and reports what the
    /// rest of the pipeline may consume. A successful read feeds both the
    /// sampling window and the degraded-mode smoothers; a failed read
    /// marks the epoch degraded and touches neither.
    fn ingest(&mut self, snapshot: Result<CounterSnapshot, RdtError>) -> SensorReading;

    /// The rates a trace consumer should display for `reading`: the real
    /// measurement when there is one, the EWMA'd estimate for a dropout,
    /// and zero-rates when the window merely lacks two samples.
    fn display_rates(&self, reading: &SensorReading) -> Rates;

    /// Good samples currently in the window. The explorer only trusts an
    /// unfairness measurement when every application has at least two.
    fn samples(&self) -> usize;

    /// Seeds the degraded-mode estimate (end of profiling), so even a
    /// first-epoch dropout has something to bridge with.
    fn seed(&mut self, rates: &Rates);

    /// Forgets the sampling window but keeps the degraded-mode estimate
    /// (budget changes: the old samples span a different partition).
    fn clear_window(&mut self);

    /// Forgets everything — window and estimate (re-profiling).
    fn reset(&mut self);
}

/// Frozen state of a [`WindowedSensor`]: the retained counter samples and
/// the four degraded-mode smoother values (ips, accesses/s, misses/s,
/// miss ratio — in that order). Restoring it resumes sensing bit-exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct SensorSnapshot {
    /// The sampling window's capacity.
    pub capacity: usize,
    /// Retained counter snapshots, oldest first.
    pub samples: Vec<CounterSnapshot>,
    /// EWMA values: `[ips, accesses/s, misses/s, miss_ratio]`.
    pub ewma: [Option<f64>; 4],
}

/// The default sensor: a bounded [`SlidingWindow`] of snapshots plus the
/// `RatesEwma` dropout bridge.
#[derive(Debug)]
pub struct WindowedSensor {
    window: SlidingWindow,
    ewma: RatesEwma,
}

impl WindowedSensor {
    /// A sensor with a `capacity`-snapshot sampling window.
    pub fn new(capacity: usize) -> WindowedSensor {
        WindowedSensor {
            window: SlidingWindow::new(capacity),
            ewma: RatesEwma::new(),
        }
    }

    /// Captures the sensor's complete state.
    pub fn snapshot(&self) -> SensorSnapshot {
        SensorSnapshot {
            capacity: self.window.capacity(),
            samples: self.window.samples().copied().collect(),
            ewma: [
                self.ewma.ips.value(),
                self.ewma.accesses.value(),
                self.ewma.misses.value(),
                self.ewma.miss_ratio.value(),
            ],
        }
    }

    /// Rebuilds a sensor from a captured state.
    pub fn from_snapshot(snap: &SensorSnapshot) -> WindowedSensor {
        let mut sensor = WindowedSensor::new(snap.capacity);
        for s in &snap.samples {
            sensor.window.push(*s);
        }
        sensor.ewma.ips.restore(snap.ewma[0]);
        sensor.ewma.accesses.restore(snap.ewma[1]);
        sensor.ewma.misses.restore(snap.ewma[2]);
        sensor.ewma.miss_ratio.restore(snap.ewma[3]);
        sensor
    }
}

impl Sensor for WindowedSensor {
    fn ingest(&mut self, snapshot: Result<CounterSnapshot, RdtError>) -> SensorReading {
        match snapshot {
            Ok(s) => {
                self.window.push(s);
                let rates = self.window.last_rates();
                if let Some(r) = &rates {
                    self.ewma.update(r);
                }
                SensorReading {
                    rates,
                    dropped: false,
                }
            }
            // Dropout (or a momentarily vanished group): degrade — hold
            // the previous estimates for one period.
            Err(_) => SensorReading {
                rates: None,
                dropped: true,
            },
        }
    }

    fn display_rates(&self, reading: &SensorReading) -> Rates {
        match reading.rates {
            Some(r) => r,
            None if reading.dropped => self.ewma.rates().unwrap_or_default(),
            None => Rates::default(),
        }
    }

    fn samples(&self) -> usize {
        self.window.len()
    }

    fn seed(&mut self, rates: &Rates) {
        self.ewma.update(rates);
    }

    fn clear_window(&mut self) {
        self.window.clear();
    }

    fn reset(&mut self) {
        self.window.clear();
        self.ewma.reset();
    }
}
