//! The classification layer: the per-application LLC/MBA FSM pair behind
//! one interface.
//!
//! The second stage of the control-plane pipeline (DESIGN.md §12). The
//! epoch driver hands each application's classifier one [`Measurement`]
//! per successfully sensed epoch; the classifier derives the two
//! per-resource [`Observation`]s (each FSM sees the transfer events in
//! its own priority order, Figs 8–9) and steps both machines. It also
//! owns the §5.4.1 probe-to-initial-state rule that profiling uses.

use crate::fsm::{AppState, Observation};
use crate::llc_fsm::LlcClassifier;
use crate::mba_fsm::MbaClassifier;
use crate::next_state::AppliedEvents;
use crate::params::CoPartParams;

/// One epoch's classifier inputs for one application, before the
/// per-resource event views are derived.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measurement {
    /// Relative IPS change vs. the previous period.
    pub perf_delta: f64,
    /// LLC accesses per second.
    pub access_rate: f64,
    /// LLC miss ratio.
    pub miss_ratio: f64,
    /// STREAM-normalized memory traffic ratio (§5.3).
    pub traffic_ratio: f64,
}

/// The classification seam of the control-plane pipeline: anything that
/// turns per-epoch measurements into a Supply/Maintain/Demand verdict per
/// resource.
///
/// # Examples
///
/// ```
/// use copart_core::classifier::{Classifier, DualFsmClassifier, Measurement};
/// use copart_core::next_state::AppliedEvents;
/// use copart_core::{AppState, CoPartParams};
///
/// let params = CoPartParams::default();
/// let mut classifier = DualFsmClassifier::new();
/// assert_eq!(classifier.states(), (AppState::Maintain, AppState::Maintain));
///
/// // A cache-hungry epoch: high access rate and miss ratio, low traffic.
/// let m = Measurement {
///     perf_delta: 0.0,
///     access_rate: 1e9,
///     miss_ratio: 0.9,
///     traffic_ratio: 0.05,
/// };
/// classifier.observe(&params, &m, AppliedEvents::default());
/// let (llc, _mba) = classifier.states();
/// assert_eq!(llc, AppState::Demand, "wants more LLC ways");
///
/// // Profiling restarts both machines from probed initial states.
/// classifier.reset(AppState::Supply, AppState::Maintain);
/// assert_eq!(classifier.states(), (AppState::Supply, AppState::Maintain));
/// ```
pub trait Classifier {
    /// Steps both resource classifiers with one epoch's measurement and
    /// the transfers applied to this application last epoch.
    fn observe(&mut self, params: &CoPartParams, m: &Measurement, events: AppliedEvents);

    /// Current verdicts `(LLC, MBA)`.
    fn states(&self) -> (AppState, AppState);

    /// Restarts both machines from the given initial states (profiling).
    fn reset(&mut self, llc: AppState, mba: AppState);
}

/// The default classifier: the paper's two FSMs (Figs 8–9) side by side.
#[derive(Debug)]
pub struct DualFsmClassifier {
    llc: LlcClassifier,
    mba: MbaClassifier,
}

impl DualFsmClassifier {
    /// Both machines starting in `Maintain` (pre-profiling default).
    pub fn new() -> DualFsmClassifier {
        DualFsmClassifier {
            llc: LlcClassifier::new(AppState::Maintain),
            mba: MbaClassifier::new(AppState::Maintain),
        }
    }

    /// The LLC verdict alone.
    pub fn llc_state(&self) -> AppState {
        self.llc.state()
    }

    /// The MBA verdict alone.
    pub fn mba_state(&self) -> AppState {
        self.mba.state()
    }
}

impl Default for DualFsmClassifier {
    fn default() -> DualFsmClassifier {
        DualFsmClassifier::new()
    }
}

impl Classifier for DualFsmClassifier {
    fn observe(&mut self, params: &CoPartParams, m: &Measurement, events: AppliedEvents) {
        let base = Observation {
            perf_delta: m.perf_delta,
            access_rate: m.access_rate,
            miss_ratio: m.miss_ratio,
            traffic_ratio: m.traffic_ratio,
            event: events.llc_event(),
        };
        self.llc.update(params, &base);
        let mba_obs = Observation {
            event: events.mba_event(),
            ..base
        };
        self.mba.update(params, &mba_obs);
    }

    fn states(&self) -> (AppState, AppState) {
        (self.llc.state(), self.mba.state())
    }

    fn reset(&mut self, llc: AppState, mba: AppState) {
        self.llc.reset(llc);
        self.mba.reset(mba);
    }
}

/// The three profiling probes' outputs for one application (§5.4.1):
/// `IPS_full` plus the `(l_P, 100 %)` LLC probe and the `(L, M_P)`
/// bandwidth probe.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProfileProbes {
    /// IPS with full resources (the Eq 1 numerator).
    pub ips_full: f64,
    /// IPS confined to `l_P` ways.
    pub ips_llc_probe: f64,
    /// IPS throttled to `M_P` percent bandwidth.
    pub ips_mba_probe: f64,
    /// LLC access rate during the LLC probe.
    pub probe_access_rate: f64,
    /// LLC miss ratio during the LLC probe.
    pub probe_miss_ratio: f64,
    /// STREAM-normalized traffic ratio with full resources.
    pub traffic_full: f64,
}

/// Derives the initial classifier states from the profiling probes
/// (§5.4.1): a probe that costs more than the demand threshold starts
/// the machine in `Demand`; an application that barely exercises the
/// resource starts in `Supply`; everything else starts in `Maintain`.
pub fn initial_states(p: &CoPartParams, probes: &ProfileProbes) -> (AppState, AppState) {
    let deg = |x: f64| {
        if probes.ips_full > 0.0 {
            (probes.ips_full - x) / probes.ips_full
        } else {
            0.0
        }
    };
    // Supply when the cache is barely exercised even at l_P ways: a low
    // access rate means cache-idle, a low miss ratio at l_P ways means
    // the working set already fits a minimal slice.
    let llc = if deg(probes.ips_llc_probe) > p.profile_demand_threshold {
        AppState::Demand
    } else if probes.probe_access_rate < p.alpha_access_rate
        || probes.probe_miss_ratio < p.miss_ratio_supply
    {
        AppState::Supply
    } else {
        AppState::Maintain
    };
    let mba = if deg(probes.ips_mba_probe) > p.profile_demand_threshold {
        AppState::Demand
    } else if probes.traffic_full < p.traffic_ratio_supply {
        AppState::Supply
    } else {
        AppState::Maintain
    };
    (llc, mba)
}
