//! The planning layer: Algorithm 1's exploration stepper and the
//! pluggable policy engines.
//!
//! The third stage of the control-plane pipeline (DESIGN.md §12), in two
//! halves:
//!
//! * [`Explorer`] — the per-runtime state of the §5.4.2 exploration
//!   (Algorithm 1): the RNG, the θ-retry counter, the best state seen,
//!   and the idle-phase drift threshold. Each exploring epoch it turns
//!   the classifier verdicts into one [`PlannedStep`] — a proposed next
//!   state plus what the driver should do with it.
//! * [`PolicyEngine`] — one uniform interface over every evaluated
//!   allocation policy (§6.1). A static engine plans a single
//!   [`SystemState`]; a dynamic engine plans a [`RuntimeConfig`] for the
//!   consolidation runtime. [`engine`] maps each
//!   [`PolicyKind`] onto its engine, replacing per-policy `match`
//!   dispatch in the evaluation harness; a new policy plugs in by
//!   implementing the trait (see DESIGN.md §12.3).

use copart_rng::XorShift64Star;

use copart_rdt::MbaLevel;
use copart_sim::{AppSpec, MachineConfig};
use copart_workloads::stream::StreamReference;

use crate::actuator::ResilienceConfig;
use crate::next_state::{
    get_next_system_state_greedy, get_next_system_state_into, AppClassification, AppliedEvents,
    ExploreScratch, StepStats,
};
use crate::policies::{equal_state, static_search, utility_state, EvalOptions, PolicyKind};
use crate::runtime::{PlannerMode, RuntimeConfig};
use crate::state::{AllocationState, SystemState, WaysBudget};
use crate::CoPartParams;

/// What the explorer proposes for one exploring epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannedStep {
    /// The state the matching step produced (for [`PlanAction::Transfer`]
    /// and [`PlanAction::Converge`]) or the random neighbor (for
    /// [`PlanAction::ThetaRetry`]) — exactly what the trace records as
    /// the epoch's proposal.
    pub proposal: SystemState,
    /// Instability-chaining iterations the matching step used.
    pub matching_rounds: u32,
    /// What the driver should do with the proposal.
    pub action: PlanAction,
}

/// The three outcomes of one Algorithm 1 step.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanAction {
    /// The matching transferred resources: apply the proposal and feed
    /// each application its transfer events.
    Transfer {
        /// Per-application transfers (same indexing as the apps).
        events: Vec<AppliedEvents>,
    },
    /// The matching stalled; the proposal is a random neighbor restart
    /// (Algorithm 1 lines 11–14). A rolled-back apply does not consume a
    /// θ-retry: nothing new was tried.
    ThetaRetry,
    /// Exploration converged: go idle, optionally settling on the best
    /// state seen (with its unfairness) when it beats the current one.
    Converge {
        /// `(unfairness, state)` to settle on, when better than staying.
        settle: Option<(f64, SystemState)>,
    },
}

/// Reusable buffers for [`Explorer::plan_into`]: the incremental matching
/// scratch plus the proposal/events the plan writes in place. One of these
/// lives in the runtime's `EpochScratch`, making steady-state planning
/// allocation-free.
#[derive(Debug, Default)]
pub struct PlanScratch {
    /// Incremental matching buffers + role cache.
    pub explore: ExploreScratch,
    /// The planned next state (the reference [`PlannedStep::proposal`]).
    pub proposal: SystemState,
    /// Per-application transfers (same indexing as the apps).
    pub events: Vec<AppliedEvents>,
}

/// What the driver should do with an in-place plan (the proposal and
/// events are in the [`PlanScratch`]).
#[derive(Debug, Clone, PartialEq)]
pub enum PlanDecision {
    /// Apply the proposal and feed each application its transfer events.
    Transfer,
    /// The matching stalled; the proposal is a random neighbor restart.
    ThetaRetry,
    /// Exploration converged: go idle, optionally settling on the best
    /// `(unfairness, state)` seen when it beats the current one.
    Converge(Option<(f64, SystemState)>),
}

/// The scalar outcome of [`Explorer::plan_into`].
#[derive(Debug, Clone, PartialEq)]
pub struct PlanStats {
    /// Instability-chaining iterations the matching step used.
    pub matching_rounds: u32,
    /// What the driver should do with the scratch proposal.
    pub decision: PlanDecision,
}

/// The §5.4.2 exploration stepper (Algorithm 1), lifted out of the epoch
/// driver. Owns everything exploration is stateful about: the RNG that
/// drives matching tie-breaks and neighbor restarts, the θ-retry
/// counter, the best `(unfairness, state)` seen, and the unfairness the
/// manager last went idle at.
#[derive(Debug)]
pub struct Explorer {
    rng: XorShift64Star,
    retry_count: u32,
    unfairness_at_idle: f64,
    /// Best (lowest-unfairness) state observed during the current
    /// exploration, and its unfairness. Random neighbor restarts can walk
    /// into worse states with no supplier able to undo them; the manager
    /// settles on the best state seen when it goes idle.
    best_seen: Option<(f64, SystemState)>,
}

impl Explorer {
    /// A fresh explorer seeded with the controller seed.
    pub fn new(seed: u64) -> Explorer {
        Explorer {
            rng: XorShift64Star::seed_from_u64(seed),
            retry_count: 0,
            unfairness_at_idle: 0.0,
            best_seen: None,
        }
    }

    /// θ-retries consumed in the current exploration (traced per epoch).
    pub fn retry_count(&self) -> u32 {
        self.retry_count
    }

    /// Begins a new exploration: forgets the retry budget and the best
    /// state seen (membership, budget, weight changes, re-exploration).
    pub fn restart(&mut self) {
        self.retry_count = 0;
        self.best_seen = None;
    }

    /// Remembers the state in force this epoch when its measured
    /// unfairness is the best so far. The first period after (re)starting
    /// carries bootstrap slowdowns (exactly 1.0 for everyone, unfairness
    /// 0), so only `measured` states — two real counter samples for every
    /// application — qualify.
    pub fn record_best(&mut self, unfairness: f64, state: &SystemState, measured: bool) {
        if measured
            && unfairness.is_finite()
            && self.best_seen.as_ref().is_none_or(|(u, _)| unfairness < *u)
        {
            self.best_seen = Some((unfairness, state.clone()));
        }
    }

    /// One Algorithm 1 step: run the matching (or the greedy ablation)
    /// over the classifier verdicts and decide whether to transfer,
    /// restart from a random neighbor, or converge.
    ///
    /// Convenience wrapper over [`Explorer::plan_into`] that returns owned
    /// buffers; the epoch hot path holds a [`PlanScratch`] and calls
    /// `plan_into` directly.
    pub fn plan(
        &mut self,
        cfg: &RuntimeConfig,
        current: &SystemState,
        apps: &[AppClassification],
        current_unfairness: f64,
    ) -> PlannedStep {
        let mut scratch = PlanScratch::default();
        let stats = self.plan_into(cfg, current, apps, current_unfairness, &mut scratch);
        PlannedStep {
            proposal: scratch.proposal,
            matching_rounds: stats.matching_rounds,
            action: match stats.decision {
                PlanDecision::Transfer => PlanAction::Transfer {
                    events: scratch.events,
                },
                PlanDecision::ThetaRetry => PlanAction::ThetaRetry,
                PlanDecision::Converge(settle) => PlanAction::Converge { settle },
            },
        }
    }

    /// [`Explorer::plan`] writing the proposal and events into `scratch`
    /// instead of allocating, using the incremental matching step
    /// ([`get_next_system_state_into`]) underneath. Identical decisions
    /// and RNG draw sequence as the from-scratch reference.
    pub fn plan_into(
        &mut self,
        cfg: &RuntimeConfig,
        current: &SystemState,
        apps: &[AppClassification],
        current_unfairness: f64,
        scratch: &mut PlanScratch,
    ) -> PlanStats {
        let p = &cfg.params;
        let stats = if p.use_hr_matching {
            get_next_system_state_into(
                current,
                apps,
                &cfg.budget,
                &mut self.rng,
                cfg.manage_llc,
                cfg.manage_mba,
                &mut scratch.explore,
                &mut scratch.proposal,
                &mut scratch.events,
            )
        } else {
            let outcome = get_next_system_state_greedy(
                current,
                apps,
                &cfg.budget,
                cfg.manage_llc,
                cfg.manage_mba,
            );
            scratch.proposal.allocs.clone_from(&outcome.state.allocs);
            scratch.events.clone_from(&outcome.events);
            StepStats {
                changed: outcome.changed,
                matching_rounds: outcome.matching_rounds,
            }
        };
        let matching_rounds = stats.matching_rounds;
        if stats.changed {
            PlanStats {
                matching_rounds,
                decision: PlanDecision::Transfer,
            }
        } else if self.retry_count < p.theta_retries && (cfg.manage_llc || cfg.manage_mba) {
            // Algorithm 1 lines 11–14: random neighbor restart (overwrites
            // the stalled matching output in the proposal buffer).
            current.neighbor_into(
                &cfg.budget,
                &mut self.rng,
                cfg.manage_llc,
                cfg.manage_mba,
                &mut scratch.proposal,
            );
            PlanStats {
                matching_rounds,
                decision: PlanDecision::ThetaRetry,
            }
        } else {
            // Converged: settle on the best state seen during this
            // exploration (random restarts may have left us on a worse
            // state with no producer able to undo them).
            let settle = self.best_seen.take().filter(|(best_u, best_state)| {
                *best_state != *current && *best_u < current_unfairness
            });
            PlanStats {
                matching_rounds,
                decision: PlanDecision::Converge(settle),
            }
        }
    }

    /// A transfer landed: the stall streak is broken.
    pub fn transfer_applied(&mut self) {
        self.retry_count = 0;
    }

    /// A neighbor restart landed: one θ-retry consumed.
    pub fn retry_applied(&mut self) {
        self.retry_count += 1;
    }

    /// Exploration went idle at the given unfairness (§5.4.3).
    pub fn settle(&mut self, unfairness: f64) {
        self.unfairness_at_idle = unfairness;
    }

    /// Whether the fairness picture has drifted enough from the idle
    /// point to resume adaptation (§5.4.3).
    pub fn should_reexplore(&self, current_unfairness: f64) -> bool {
        current_unfairness > self.unfairness_at_idle * 1.5 + 0.02
    }

    /// Captures the explorer's complete state — RNG stream position,
    /// retry budget, idle threshold, and best state seen — for crash
    /// recovery.
    pub fn snapshot(&self) -> ExplorerSnapshot {
        ExplorerSnapshot {
            rng_state: self.rng.state(),
            retry_count: self.retry_count,
            unfairness_at_idle: self.unfairness_at_idle,
            best_seen: self.best_seen.clone(),
        }
    }

    /// Rebuilds an explorer from a captured state; planning resumes with
    /// the identical RNG draw sequence.
    pub fn from_snapshot(snap: &ExplorerSnapshot) -> Explorer {
        Explorer {
            rng: XorShift64Star::from_state(snap.rng_state),
            retry_count: snap.retry_count,
            unfairness_at_idle: snap.unfairness_at_idle,
            best_seen: snap.best_seen.clone(),
        }
    }
}

/// Frozen state of an [`Explorer`] (see [`Explorer::snapshot`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ExplorerSnapshot {
    /// Raw RNG state word.
    pub rng_state: u64,
    /// θ-retries consumed in the current exploration.
    pub retry_count: u32,
    /// Unfairness at the last idle transition (§5.4.3 drift baseline).
    pub unfairness_at_idle: f64,
    /// Best `(unfairness, state)` observed this exploration.
    pub best_seen: Option<(f64, SystemState)>,
}

/// Everything a policy engine may consult when planning a run: the
/// machine, the mix, the solo baselines, the STREAM reference, the
/// controller parameters, and the evaluation lengths.
#[derive(Debug, Clone, Copy)]
pub struct PlanContext<'a> {
    /// The machine the mix runs on.
    pub machine: &'a MachineConfig,
    /// The consolidated applications.
    pub specs: &'a [AppSpec],
    /// Each spec's solo full-resource IPS (Eq 1 numerators).
    pub ips_full_solo: &'a [f64],
    /// STREAM reference miss rates per MBA level (§5.3).
    pub stream: &'a StreamReference,
    /// Controller parameters (dynamic engines only).
    pub params: &'a CoPartParams,
    /// Evaluation lengths (the ST search probes candidates with these).
    pub opts: &'a EvalOptions,
    /// The machine slice the policy may allocate.
    pub budget: WaysBudget,
}

/// What a policy engine plans for a run.
#[derive(Debug, Clone)]
pub enum PolicyPlan {
    /// Apply one fixed state and only measure.
    Static {
        /// The state to hold for the whole run.
        state: SystemState,
        /// Apply full overlapping masks instead of the state's disjoint
        /// layout (the unpartitioned baseline is not representable as
        /// disjoint way counts).
        overlapping: bool,
    },
    /// Drive the consolidation runtime with this configuration.
    Dynamic {
        /// The runtime configuration to adapt under.
        config: RuntimeConfig,
    },
}

/// One §6.1 allocation policy behind a uniform interface.
///
/// Implementations are stateless units; [`engine`] hands out a static
/// reference per [`PolicyKind`]. A new policy plugs into the evaluation
/// harness by implementing this trait — plan a state (static) or a
/// runtime configuration (dynamic) and the shared driver does the rest.
///
/// # Examples
///
/// Looking up a built-in engine through the registry:
///
/// ```
/// use copart_core::planner::engine;
/// use copart_core::policies::PolicyKind;
///
/// let copart = engine(PolicyKind::CoPart);
/// assert_eq!(copart.kind(), PolicyKind::CoPart);
/// assert_eq!(copart.label(), "CoPart");
/// ```
///
/// Plugging in a custom (static) policy:
///
/// ```
/// use copart_core::planner::{PlanContext, PolicyEngine, PolicyPlan};
/// use copart_core::policies::PolicyKind;
/// use copart_core::SystemState;
///
/// /// Holds the equal split for the whole run, never adapting.
/// struct FrozenEqual;
///
/// impl PolicyEngine for FrozenEqual {
///     fn kind(&self) -> PolicyKind {
///         PolicyKind::Equal
///     }
///     fn plan(&self, ctx: &PlanContext<'_>) -> PolicyPlan {
///         PolicyPlan::Static {
///             state: SystemState::equal_split(
///                 ctx.specs.len(),
///                 &ctx.budget,
///                 ctx.budget.mba_cap,
///             ),
///             overlapping: false,
///         }
///     }
/// }
///
/// let engine: &dyn PolicyEngine = &FrozenEqual;
/// assert_eq!(engine.label(), "EQ");
/// ```
pub trait PolicyEngine: Sync {
    /// The policy this engine implements.
    fn kind(&self) -> PolicyKind;

    /// The paper's label for plots and tables.
    fn label(&self) -> &'static str {
        self.kind().label()
    }

    /// Plans the run: a fixed state or a runtime configuration.
    fn plan(&self, ctx: &PlanContext<'_>) -> PolicyPlan;

    /// The [`RuntimeConfig`] a *dynamic* engine drives the consolidation
    /// runtime with, `None` for static engines. Public seam for harnesses
    /// that build the backend themselves (e.g. to wrap it in a
    /// fault-injecting decorator) yet must run the exact controller
    /// configuration the standard evaluation uses.
    fn runtime_config(
        &self,
        machine_cfg: &MachineConfig,
        n_apps: usize,
        stream: &StreamReference,
        params: &CoPartParams,
    ) -> Option<RuntimeConfig> {
        let _ = (machine_cfg, n_apps, stream, params);
        None
    }
}

/// The engine implementing `kind`.
pub fn engine(kind: PolicyKind) -> &'static dyn PolicyEngine {
    match kind {
        PolicyKind::Unpartitioned => &UnpartitionedEngine,
        PolicyKind::Equal => &EqualShareEngine,
        PolicyKind::Static => &StaticSearchEngine,
        PolicyKind::CatOnly => &CatOnlyEngine,
        PolicyKind::MbaOnly => &MbaOnlyEngine,
        PolicyKind::CoPart => &CoPartEngine,
        PolicyKind::Utility => &UtilityEngine,
        PolicyKind::LfocCluster => &LfocClusterEngine,
    }
}

/// The unpartitioned "state" is not representable as disjoint way counts;
/// it is applied specially (full overlapping masks). The returned state
/// records full ways / MBA 100 per app for bookkeeping.
pub fn unpartitioned_state(n: usize, ways: u32) -> SystemState {
    SystemState {
        allocs: vec![
            AllocationState {
                ways,
                mba: MbaLevel::MAX,
            };
            n
        ],
    }
}

/// The shared [`RuntimeConfig`] shape of the dynamic engines.
fn dynamic_config(
    machine_cfg: &MachineConfig,
    stream: &StreamReference,
    params: &CoPartParams,
    manage_llc: bool,
    manage_mba: bool,
    mba_cap: MbaLevel,
) -> RuntimeConfig {
    RuntimeConfig {
        params: params.clone(),
        manage_llc,
        manage_mba,
        budget: WaysBudget {
            first_way: 0,
            total_ways: machine_cfg.llc_ways,
            mba_cap,
        },
        stream: stream.clone(),
        resilience: ResilienceConfig::default(),
        planner: PlannerMode::Explore,
    }
}

/// Plans a [`PolicyPlan::Dynamic`] from the engine's own
/// [`PolicyEngine::runtime_config`].
fn dynamic_plan(engine: &dyn PolicyEngine, ctx: &PlanContext<'_>) -> PolicyPlan {
    let config = engine
        .runtime_config(ctx.machine, ctx.specs.len(), ctx.stream, ctx.params)
        .expect("dynamic engines provide a runtime configuration");
    PolicyPlan::Dynamic { config }
}

/// No partitioning at all: full overlapping masks, MBA 100 % (the §4.2
/// normalization baseline).
pub struct UnpartitionedEngine;

impl PolicyEngine for UnpartitionedEngine {
    fn kind(&self) -> PolicyKind {
        PolicyKind::Unpartitioned
    }

    fn plan(&self, ctx: &PlanContext<'_>) -> PolicyPlan {
        PolicyPlan::Static {
            state: unpartitioned_state(ctx.specs.len(), ctx.machine.llc_ways),
            overlapping: true,
        }
    }
}

/// EQ: equal static split of ways, equal MBA share.
pub struct EqualShareEngine;

impl PolicyEngine for EqualShareEngine {
    fn kind(&self) -> PolicyKind {
        PolicyKind::Equal
    }

    fn plan(&self, ctx: &PlanContext<'_>) -> PolicyPlan {
        PolicyPlan::Static {
            state: equal_state(ctx.specs.len(), &ctx.budget),
            overlapping: false,
        }
    }
}

/// ST: the best static state found by offline search (§6.1).
pub struct StaticSearchEngine;

impl PolicyEngine for StaticSearchEngine {
    fn kind(&self) -> PolicyKind {
        PolicyKind::Static
    }

    fn plan(&self, ctx: &PlanContext<'_>) -> PolicyPlan {
        PolicyPlan::Static {
            state: static_search(
                ctx.machine,
                ctx.specs,
                ctx.ips_full_solo,
                &ctx.budget,
                ctx.opts,
            ),
            overlapping: false,
        }
    }
}

/// Utility-based static LLC partitioning (UCP/dCat-style), the paper's
/// closest related work; MBA is the equal share.
pub struct UtilityEngine;

impl PolicyEngine for UtilityEngine {
    fn kind(&self) -> PolicyKind {
        PolicyKind::Utility
    }

    fn plan(&self, ctx: &PlanContext<'_>) -> PolicyPlan {
        PolicyPlan::Static {
            state: utility_state(ctx.machine, ctx.specs, &ctx.budget),
            overlapping: false,
        }
    }
}

/// CAT-only: dynamic LLC partitioning with the MBA level pinned at the
/// equal share (the budget cap makes the fixed level both the initial
/// and the maximum value).
pub struct CatOnlyEngine;

impl PolicyEngine for CatOnlyEngine {
    fn kind(&self) -> PolicyKind {
        PolicyKind::CatOnly
    }

    fn plan(&self, ctx: &PlanContext<'_>) -> PolicyPlan {
        dynamic_plan(self, ctx)
    }

    fn runtime_config(
        &self,
        machine_cfg: &MachineConfig,
        n_apps: usize,
        stream: &StreamReference,
        params: &CoPartParams,
    ) -> Option<RuntimeConfig> {
        Some(dynamic_config(
            machine_cfg,
            stream,
            params,
            true,
            false,
            SystemState::equal_mba_level(n_apps),
        ))
    }
}

/// MBA-only: equal fixed LLC partitioning with dynamic MBA.
pub struct MbaOnlyEngine;

impl PolicyEngine for MbaOnlyEngine {
    fn kind(&self) -> PolicyKind {
        PolicyKind::MbaOnly
    }

    fn plan(&self, ctx: &PlanContext<'_>) -> PolicyPlan {
        dynamic_plan(self, ctx)
    }

    fn runtime_config(
        &self,
        machine_cfg: &MachineConfig,
        _n_apps: usize,
        stream: &StreamReference,
        params: &CoPartParams,
    ) -> Option<RuntimeConfig> {
        Some(dynamic_config(
            machine_cfg,
            stream,
            params,
            false,
            true,
            MbaLevel::MAX,
        ))
    }
}

/// LFOC-style clustering: dynamic management of both resources, but the
/// planner groups applications by their dual-FSM classification into at
/// most nine clusters sharing a CAT region and a proportional MBA grant
/// (see [`crate::cluster`]), instead of exploring per-app transfers.
pub struct LfocClusterEngine;

impl PolicyEngine for LfocClusterEngine {
    fn kind(&self) -> PolicyKind {
        PolicyKind::LfocCluster
    }

    fn plan(&self, ctx: &PlanContext<'_>) -> PolicyPlan {
        dynamic_plan(self, ctx)
    }

    fn runtime_config(
        &self,
        machine_cfg: &MachineConfig,
        _n_apps: usize,
        stream: &StreamReference,
        params: &CoPartParams,
    ) -> Option<RuntimeConfig> {
        let mut cfg = dynamic_config(machine_cfg, stream, params, true, true, MbaLevel::MAX);
        cfg.planner = PlannerMode::LfocCluster;
        Some(cfg)
    }
}

/// CoPart: coordinated dynamic partitioning of both resources.
pub struct CoPartEngine;

impl PolicyEngine for CoPartEngine {
    fn kind(&self) -> PolicyKind {
        PolicyKind::CoPart
    }

    fn plan(&self, ctx: &PlanContext<'_>) -> PolicyPlan {
        dynamic_plan(self, ctx)
    }

    fn runtime_config(
        &self,
        machine_cfg: &MachineConfig,
        _n_apps: usize,
        stream: &StreamReference,
        params: &CoPartParams,
    ) -> Option<RuntimeConfig> {
        Some(dynamic_config(
            machine_cfg,
            stream,
            params,
            true,
            true,
            MbaLevel::MAX,
        ))
    }
}
