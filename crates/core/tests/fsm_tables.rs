//! The complete transition tables of both classifier FSMs, written out
//! exhaustively. The paper's Figures 8 and 9 are diagrams whose transition
//! labels this reproduction reconstructed from the §5.2–5.3 prose (see
//! DESIGN.md §7); these tables *are* that reconstruction, row by row, so
//! any future change to the classifiers is a visible diff here.

use copart_core::fsm::{AppState, Observation, ResourceEvent};
use copart_core::llc_fsm::LlcClassifier;
use copart_core::mba_fsm::MbaClassifier;
use copart_core::CoPartParams;

use AppState::{Demand, Maintain, Supply};
use ResourceEvent::{GrantedLlc, GrantedMba, None as Ev_None, ReclaimedLlc, ReclaimedMba};

/// Observation-class axes for the LLC FSM:
/// activity ∈ {Cold, Warm, Hot}; Cold = access rate < α or miss ratio < β,
/// Hot = miss ratio > Β, Warm = in between.
#[derive(Clone, Copy, Debug)]
enum LlcActivity {
    Cold,
    Warm,
    Hot,
}

/// Performance delta classes: Hurt ≤ −δ_P, Flat in between, Improved ≥ δ_P.
#[derive(Clone, Copy, Debug)]
enum Perf {
    Hurt,
    Flat,
    Improved,
}

fn llc_obs(activity: LlcActivity, perf: Perf, event: ResourceEvent) -> Observation {
    let (access_rate, miss_ratio) = match activity {
        LlcActivity::Cold => (1.0e5, 0.5),
        LlcActivity::Warm => (1.0e8, 0.02),
        LlcActivity::Hot => (1.0e8, 0.10),
    };
    let perf_delta = match perf {
        Perf::Hurt => -0.10,
        Perf::Flat => 0.0,
        Perf::Improved => 0.10,
    };
    Observation {
        perf_delta,
        access_rate,
        miss_ratio,
        traffic_ratio: 0.0,
        event,
    }
}

#[test]
fn llc_fsm_full_transition_table() {
    use LlcActivity::*;
    use Perf::*;
    // (from, activity, perf, event) → to.
    // Comments carry the §5.2 sentence each row encodes.
    let table: &[(AppState, LlcActivity, Perf, ResourceEvent, AppState)] = &[
        // "If the performance of the application is considerably improved
        //  when an additional LLC way is allocated, the application
        //  continues to stay in the Demand state."
        (Demand, Hot, Improved, GrantedLlc, Demand),
        (Demand, Warm, Improved, GrantedLlc, Demand),
        // "If the LLC access rate or the LLC miss ratio is sufficiently
        //  low ..., the application transitions to the Supply state."
        (Demand, Cold, Improved, GrantedLlc, Supply),
        (Demand, Cold, Flat, Ev_None, Supply),
        (Demand, Cold, Hurt, ReclaimedMba, Supply),
        // "If the performance improvement with an additional LLC way is
        //  small, the application transitions to the Maintain state."
        (Demand, Hot, Flat, GrantedLlc, Maintain),
        (Demand, Warm, Flat, GrantedLlc, Maintain),
        (Demand, Warm, Hurt, GrantedLlc, Maintain),
        // No grant happened ⇒ no evidence of diminishing returns: hold.
        (Demand, Hot, Flat, Ev_None, Demand),
        (Demand, Warm, Flat, Ev_None, Demand),
        (Demand, Hot, Flat, GrantedMba, Demand),
        (Demand, Warm, Hurt, ReclaimedMba, Demand),
        // Maintain: high miss ratio re-demands; cold supplies; a painful
        // LLC reclaim re-demands; otherwise hold.
        (Maintain, Hot, Flat, Ev_None, Demand),
        (Maintain, Hot, Improved, GrantedMba, Demand),
        (Maintain, Cold, Flat, Ev_None, Supply),
        (Maintain, Warm, Hurt, ReclaimedLlc, Demand),
        (Maintain, Warm, Hurt, ReclaimedMba, Maintain),
        (Maintain, Warm, Flat, Ev_None, Maintain),
        (Maintain, Warm, Improved, GrantedLlc, Maintain),
        // Supply: a reclaim that hurt was a mistake (→ Demand); renewed
        // pressure re-enters through Maintain/Demand; cold stays Supply.
        (Supply, Cold, Hurt, ReclaimedLlc, Demand),
        (Supply, Warm, Hurt, ReclaimedLlc, Demand),
        (Supply, Hot, Flat, Ev_None, Demand),
        (Supply, Warm, Flat, Ev_None, Maintain),
        (Supply, Warm, Improved, GrantedMba, Maintain),
        (Supply, Cold, Flat, Ev_None, Supply),
        (Supply, Cold, Improved, Ev_None, Supply),
        (Supply, Cold, Hurt, ReclaimedMba, Supply),
    ];
    let params = CoPartParams::default();
    for &(from, activity, perf, event, expected) in table {
        let mut fsm = LlcClassifier::new(from);
        let got = fsm.update(&params, &llc_obs(activity, perf, event));
        assert_eq!(
            got, expected,
            "LLC FSM: {from} --({activity:?}, {perf:?}, {event:?})--> expected {expected}, got {got}"
        );
    }
}

/// Traffic classes for the MBA FSM: Quiet < γ, Moderate in between,
/// Heavy ≥ Γ.
#[derive(Clone, Copy, Debug)]
enum Traffic {
    Quiet,
    Moderate,
    Heavy,
}

fn mba_obs(traffic: Traffic, perf: Perf, event: ResourceEvent) -> Observation {
    let traffic_ratio = match traffic {
        Traffic::Quiet => 0.05,
        Traffic::Moderate => 0.20,
        Traffic::Heavy => 0.50,
    };
    let perf_delta = match perf {
        Perf::Hurt => -0.10,
        Perf::Flat => 0.0,
        Perf::Improved => 0.10,
    };
    Observation {
        perf_delta,
        access_rate: 1.0e8,
        miss_ratio: 0.2,
        traffic_ratio,
        event,
    }
}

#[test]
fn mba_fsm_full_transition_table() {
    use Perf::*;
    use Traffic::*;
    let table: &[(AppState, Traffic, Perf, ResourceEvent, AppState)] = &[
        // Demand holds while traffic is heavy, whatever else happens.
        (Demand, Heavy, Flat, GrantedMba, Demand),
        (Demand, Heavy, Hurt, ReclaimedLlc, Demand),
        // Quiet traffic supplies.
        (Demand, Quiet, Flat, Ev_None, Supply),
        (Demand, Quiet, Improved, GrantedMba, Supply),
        // Moderate traffic + an unproductive *MBA* grant settles to
        // Maintain...
        (Demand, Moderate, Flat, GrantedMba, Maintain),
        (Demand, Moderate, Hurt, GrantedMba, Maintain),
        // ...but §5.3's cross-resource rule: "the application remains in
        // the DEMAND state even if the performance improvement is small,
        // but the recently allocated resource is an LLC way."
        (Demand, Moderate, Flat, GrantedLlc, Demand),
        (Demand, Moderate, Flat, Ev_None, Demand),
        (Demand, Moderate, Improved, GrantedMba, Demand),
        // Maintain: heavy traffic or a painful MBA reclaim re-demands;
        // quiet supplies; otherwise hold.
        (Maintain, Heavy, Flat, Ev_None, Demand),
        (Maintain, Moderate, Hurt, ReclaimedMba, Demand),
        (Maintain, Moderate, Hurt, ReclaimedLlc, Maintain),
        (Maintain, Quiet, Flat, Ev_None, Supply),
        (Maintain, Moderate, Flat, Ev_None, Maintain),
        (Maintain, Moderate, Improved, GrantedMba, Maintain),
        // Supply mirrors the LLC FSM's Supply state.
        (Supply, Moderate, Hurt, ReclaimedMba, Demand),
        (Supply, Heavy, Flat, Ev_None, Demand),
        (Supply, Moderate, Flat, Ev_None, Maintain),
        (Supply, Quiet, Flat, Ev_None, Supply),
        (Supply, Quiet, Hurt, ReclaimedLlc, Supply),
    ];
    let params = CoPartParams::default();
    for &(from, traffic, perf, event, expected) in table {
        let mut fsm = MbaClassifier::new(from);
        let got = fsm.update(&params, &mba_obs(traffic, perf, event));
        assert_eq!(
            got, expected,
            "MBA FSM: {from} --({traffic:?}, {perf:?}, {event:?})--> expected {expected}, got {got}"
        );
    }
}

#[test]
fn fsm_trajectories_converge_for_a_satisfied_app() {
    // A realistic trajectory: a demanding app receives ways until its miss
    // ratio falls; the classifier must settle in Maintain, then Supply as
    // the cache goes quiet — never oscillating back without cause.
    let params = CoPartParams::default();
    let mut fsm = LlcClassifier::new(Demand);
    // Grant pays off twice.
    for miss_ratio in [0.20, 0.08] {
        let s = fsm.update(
            &params,
            &Observation {
                perf_delta: 0.15,
                access_rate: 1.0e8,
                miss_ratio,
                traffic_ratio: 0.0,
                event: GrantedLlc,
            },
        );
        assert_eq!(s, Demand);
    }
    // Third way buys little.
    let s = fsm.update(
        &params,
        &Observation {
            perf_delta: 0.01,
            access_rate: 1.0e8,
            miss_ratio: 0.02,
            traffic_ratio: 0.0,
            event: GrantedLlc,
        },
    );
    assert_eq!(s, Maintain);
    // Working set fully captured: miss ratio below β.
    let s = fsm.update(
        &params,
        &Observation {
            perf_delta: 0.0,
            access_rate: 1.0e8,
            miss_ratio: 0.005,
            traffic_ratio: 0.0,
            event: Ev_None,
        },
    );
    assert_eq!(s, Supply);
    // And it stays there while nothing changes.
    for _ in 0..5 {
        let s = fsm.update(
            &params,
            &Observation {
                perf_delta: 0.0,
                access_rate: 1.0e8,
                miss_ratio: 0.005,
                traffic_ratio: 0.0,
                event: Ev_None,
            },
        );
        assert_eq!(s, Supply);
    }
}
