//! Long-horizon invariants of the resource manager: whatever the mix and
//! seed, every state ever applied must satisfy the partitioning rules,
//! and the manager must always terminate its exploration.

use copart_core::runtime::{ConsolidationRuntime, RuntimeConfig};
use copart_core::state::WaysBudget;
use copart_core::{CoPartParams, Phase};
use copart_rdt::{ClosId, SimBackend};
use copart_sim::{Machine, MachineConfig};
use copart_workloads::stream::StreamReference;
use copart_workloads::{MixKind, WorkloadMix};
use std::sync::OnceLock;

fn stream() -> &'static StreamReference {
    static S: OnceLock<StreamReference> = OnceLock::new();
    S.get_or_init(|| StreamReference::compute(&MachineConfig::xeon_gold_6130(), 4))
}

fn run_with_seed(kind: MixKind, seed: u64) -> Vec<copart_core::PeriodRecord> {
    let cfg = MachineConfig::xeon_gold_6130();
    let mut backend = SimBackend::new(Machine::new(cfg.clone()));
    let mut groups: Vec<(ClosId, String)> = Vec::new();
    for spec in WorkloadMix::paper_default(kind).specs() {
        let name = spec.name.clone();
        groups.push((backend.add_workload(spec).unwrap(), name));
    }
    let rcfg = RuntimeConfig {
        params: CoPartParams {
            seed,
            ..CoPartParams::default()
        },
        manage_llc: true,
        manage_mba: true,
        budget: WaysBudget::full_machine(cfg.llc_ways),
        stream: stream().clone(),
        resilience: Default::default(),
        planner: Default::default(),
    };
    let mut rt = ConsolidationRuntime::new(backend, groups, rcfg).unwrap();
    rt.profile().unwrap();
    rt.run_periods(80).unwrap()
}

#[test]
fn every_applied_state_is_valid_across_seeds_and_mixes() {
    let budget = WaysBudget::full_machine(11);
    for kind in [MixKind::HighLlc, MixKind::HighBw, MixKind::HighBoth] {
        for seed in [1u64, 99, 0xDEAD] {
            let records = run_with_seed(kind, seed);
            for r in &records {
                assert!(
                    r.state.is_valid(&budget),
                    "{:?} seed {seed}: invalid state {:?}",
                    kind,
                    r.state
                );
                assert!(r.unfairness.is_finite() && r.unfairness >= 0.0);
                for app in &r.apps {
                    assert!(app.slowdown.is_finite() && app.slowdown > 0.0);
                }
            }
            // Algorithm 1's θ retries bound the search: the manager
            // reaches Idle, and no exploration burst (including the
            // Figure 10 re-explorations triggered by unfairness drift,
            // one of which may still be in flight when the horizon
            // ends) runs unboundedly.
            assert!(
                records.iter().any(|r| r.phase == Phase::Idle),
                "{kind:?} seed {seed} never converged"
            );
            let mut burst = 0usize;
            for r in &records {
                if r.phase == Phase::Exploring {
                    burst += 1;
                    assert!(
                        burst <= 40,
                        "{kind:?} seed {seed}: exploration burst exceeded 40 periods"
                    );
                } else {
                    burst = 0;
                }
            }
        }
    }
}

#[test]
fn time_advances_monotonically_across_periods() {
    let records = run_with_seed(MixKind::ModerateBoth, 7);
    for pair in records.windows(2) {
        assert!(pair[1].time_ns > pair[0].time_ns);
    }
}
