//! Freezing and restoring the metrics registry.
//!
//! [`copart_telemetry::MetricsRegistry`] keys its series by
//! `&'static str`, which keeps the hot path allocation-free but means a
//! name read back from disk (a `String`) cannot be handed to
//! [`MetricsRegistry::set_counter`] directly. The intern table below
//! maps every counter and gauge the workspace emits back to its static
//! name; a snapshot written by a newer build with series this build does
//! not know is restored best-effort (unknown names are skipped and
//! reported, never fabricated).
//!
//! Histograms (`*_ns` latency series) are deliberately *not* frozen:
//! they measure wall-clock behaviour of the process that died, which a
//! resumed process cannot meaningfully continue. This is a documented
//! recovery invariant (DESIGN.md §16).

use copart_telemetry::{Json, MetricsRegistry, MetricsSnapshot};

use crate::codec::{dec_hex_u64, dec_str, hex_f64, hex_u64, obj, req};
use crate::error::PersistError;

/// Every counter name the workspace emits, in one place so the intern
/// table cannot silently drift from the emitting crates.
pub const KNOWN_COUNTERS: &[&str] = &[
    "epochs",
    "transfers",
    "theta_retries",
    "convergences",
    "re_explorations",
    "matching_rounds",
    "apps_profiled",
    "backend_applies",
    "fault_write_retries",
    "fault_counter_dropouts",
    "degraded_epochs",
    "partition_apply_failures",
    "partition_rollbacks",
    "rollback_write_failures",
    "admitted_apps",
    "removed_apps",
    "policy_switches",
    "epoch_failures",
    "ticks",
    "epoch_deadline_misses",
    "http_requests",
    "http_rejected_overload",
    "trace_rotations",
    "trace_verify_failures",
    "worker_errors",
    "worker_runs",
    "snapshots_written",
    "recoveries",
];

/// Every gauge name the workspace emits.
pub const KNOWN_GAUGES: &[&str] = &["unfairness", "healthy", "snapshot_bytes"];

/// Interns a counter name read from disk.
pub fn intern_counter(name: &str) -> Option<&'static str> {
    KNOWN_COUNTERS.iter().find(|&&k| k == name).copied()
}

/// Interns a gauge name read from disk.
pub fn intern_gauge(name: &str) -> Option<&'static str> {
    KNOWN_GAUGES.iter().find(|&&k| k == name).copied()
}

/// The restorable slice of a [`MetricsSnapshot`]: cumulative counters
/// and current gauges, without the wall-clock histograms.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsFrozen {
    /// `(name, value)` for every counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge.
    pub gauges: Vec<(String, f64)>,
}

impl MetricsFrozen {
    /// Freezes the restorable slice of a registry snapshot.
    pub fn capture(snap: &MetricsSnapshot) -> MetricsFrozen {
        MetricsFrozen {
            counters: snap
                .counters
                .iter()
                .map(|&(k, v)| (k.to_string(), v))
                .collect(),
            gauges: snap
                .gauges
                .iter()
                .map(|&(k, v)| (k.to_string(), v))
                .collect(),
        }
    }

    /// Writes the frozen values back into a live registry. Returns the
    /// names that could not be interned (unknown to this build) and were
    /// therefore skipped.
    pub fn restore(&self, registry: &MetricsRegistry) -> Vec<String> {
        let mut skipped = Vec::new();
        for (name, value) in &self.counters {
            match intern_counter(name) {
                Some(key) => registry.set_counter(key, *value),
                None => skipped.push(name.clone()),
            }
        }
        for (name, value) in &self.gauges {
            match intern_gauge(name) {
                Some(key) => registry.set_gauge(key, *value),
                None => skipped.push(name.clone()),
            }
        }
        skipped
    }

    /// Serialises to JSON (counters as hex `u64`, gauges as hex bits).
    pub fn encode(&self) -> Json {
        obj(vec![
            (
                "counters",
                Json::Arr(
                    self.counters
                        .iter()
                        .map(|(k, v)| {
                            obj(vec![("name", Json::Str(k.clone())), ("value", hex_u64(*v))])
                        })
                        .collect(),
                ),
            ),
            (
                "gauges",
                Json::Arr(
                    self.gauges
                        .iter()
                        .map(|(k, v)| {
                            obj(vec![("name", Json::Str(k.clone())), ("value", hex_f64(*v))])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Deserialises from JSON.
    ///
    /// # Errors
    ///
    /// [`PersistError::Schema`] on missing or ill-typed fields.
    pub fn decode(j: &Json) -> Result<MetricsFrozen, PersistError> {
        let arr = |key: &str| -> Result<&[Json], PersistError> {
            req(j, key)?
                .as_arr()
                .ok_or_else(|| PersistError::Schema(format!("`{key}` is not an array")))
        };
        Ok(MetricsFrozen {
            counters: arr("counters")?
                .iter()
                .map(|e| Ok((dec_str(e, "name")?.to_string(), dec_hex_u64(e, "value")?)))
                .collect::<Result<Vec<_>, PersistError>>()?,
            gauges: arr("gauges")?
                .iter()
                .map(|e| {
                    Ok((
                        dec_str(e, "name")?.to_string(),
                        f64::from_bits(dec_hex_u64(e, "value")?),
                    ))
                })
                .collect::<Result<Vec<_>, PersistError>>()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_restore_round_trips_known_series() {
        let reg = MetricsRegistry::new();
        reg.add("epochs", 41);
        reg.set_gauge("unfairness", 0.0625);
        reg.observe_ns("epoch_ns", 1_000); // histogram: dropped by design
        let frozen = MetricsFrozen::capture(&reg.snapshot());

        let fresh = MetricsRegistry::new();
        let skipped = frozen.restore(&fresh);
        assert!(skipped.is_empty(), "skipped: {skipped:?}");
        assert_eq!(fresh.counter("epochs"), 41);
        assert_eq!(fresh.gauge("unfairness"), Some(0.0625));
        assert!(fresh.snapshot().histograms.is_empty());
    }

    #[test]
    fn unknown_names_are_skipped_not_fabricated() {
        let frozen = MetricsFrozen {
            counters: vec![("from_the_future".to_string(), 7)],
            gauges: vec![],
        };
        let reg = MetricsRegistry::new();
        assert_eq!(frozen.restore(&reg), vec!["from_the_future".to_string()]);
        assert_eq!(reg.counter("from_the_future"), 0);
    }

    #[test]
    fn encode_decode_round_trips_exactly() {
        let frozen = MetricsFrozen {
            counters: vec![("epochs".to_string(), u64::MAX - 3)],
            gauges: vec![("unfairness".to_string(), 0.1 + 0.2)],
        };
        let text = frozen.encode().to_string();
        let back = MetricsFrozen::decode(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, frozen);
    }
}
