//! Crash-safe state for the CoPart resource manager (DESIGN.md §16).
//!
//! A control loop that partitions a shared machine cannot afford to lose
//! its head over a daemon restart: the partition it had converged on is
//! still programmed into the hardware, and re-profiling from scratch
//! would churn every tenant through another exploration phase. This
//! crate makes the whole pipeline *resumable* instead, with two
//! complementary pieces:
//!
//! * **Epoch snapshots** — [`SnapshotDoc`] freezes the complete dynamic
//!   state at an epoch boundary: the controller
//!   ([`copart_core::RuntimeSnapshot`]: classifier FSMs, sensor
//!   windows/EWMAs, explorer RNG position, system state), the backend
//!   ([`BackendSnapshot`]: simulated machine, group table, fault-stream
//!   positions), and the cumulative metrics. [`store`] writes it
//!   atomically (temp file + rename) under a digest-bearing header, so a
//!   torn write is *detected and skipped*, never half-loaded.
//! * **An event-sourced log** — between snapshots, every input that
//!   steers the run (epoch ticks, admissions, removals, policy switches)
//!   is appended to a [`log::EventLog`] as a [`LogEntry`]. Recovery
//!   restores the latest good snapshot and [`replay`]s the log tail;
//!   because every entry records the epoch counter it executed at
//!   (`pre`), a log that does not chain onto the snapshot — or a replay
//!   that diverges mid-tail — is rejected instead of silently forking
//!   history.
//!
//! The result is the crate's headline invariant, enforced end-to-end by
//! `tests/crash_recovery.rs`: kill the daemon at *any* epoch K, resume
//! from the state directory, and the continuation is **byte-identical**
//! to a run that was never interrupted — same trace lines, same RNG
//! draws, same counters.
//!
//! Everything is serialised through the in-workspace
//! [`copart_telemetry::Json`] layer; `f64`s and wide `u64`s travel as
//! hex strings ([`codec`]) because bit-exactness, not readability, is
//! the contract.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod codec;
pub mod error;
pub mod log;
pub mod metrics;
pub mod replay;
pub mod store;

#[cfg(test)]
pub(crate) mod testutil;

pub use backend::{BackendSnapshot, PersistableBackend};
pub use codec::{SnapshotDoc, SnapshotMeta};
pub use error::PersistError;
pub use log::{EventKind, EventLog, LogEntry};
pub use metrics::MetricsFrozen;
pub use replay::{replay_log, NoHooks, ReplayHooks};
pub use store::{
    latest_good, prune, read_snapshot, write_snapshot, SNAP_MAGIC, SNAP_VERSION, SNAP_VERSION_MIN,
};
