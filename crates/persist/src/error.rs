//! The persistence layer's error type.

use std::fmt;

/// Anything that can go wrong while saving or recovering state.
#[derive(Debug)]
pub enum PersistError {
    /// An underlying filesystem operation failed.
    Io(std::io::Error),
    /// A stored document is not well-formed JSON.
    Json(copart_telemetry::JsonError),
    /// A stored document failed an integrity check (bad magic, version,
    /// length, or digest) — the file is torn or tampered with.
    Corrupt(String),
    /// A well-formed document is missing a field or holds one of the
    /// wrong shape.
    Schema(String),
    /// An event log does not chain onto the state it would replay over:
    /// the entry was recorded at epoch `found`, but the restored runtime
    /// sits at epoch `expected`.
    Chain {
        /// The epoch the runtime is at.
        expected: u64,
        /// The epoch the log entry was recorded at.
        found: u64,
    },
    /// Replaying an entry against the backend failed.
    Backend(copart_rdt::RdtError),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "i/o: {e}"),
            PersistError::Json(e) => write!(f, "json: {e}"),
            PersistError::Corrupt(what) => write!(f, "corrupt snapshot: {what}"),
            PersistError::Schema(what) => write!(f, "schema: {what}"),
            PersistError::Chain { expected, found } => write!(
                f,
                "event log does not chain: runtime at epoch {expected}, entry recorded at {found}"
            ),
            PersistError::Backend(e) => write!(f, "replay backend: {e}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            PersistError::Json(e) => Some(e),
            PersistError::Backend(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> PersistError {
        PersistError::Io(e)
    }
}

impl From<copart_telemetry::JsonError> for PersistError {
    fn from(e: copart_telemetry::JsonError) -> PersistError {
        PersistError::Json(e)
    }
}

impl From<copart_rdt::RdtError> for PersistError {
    fn from(e: copart_rdt::RdtError) -> PersistError {
        PersistError::Backend(e)
    }
}
