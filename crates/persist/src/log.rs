//! The append-only event log between snapshots.
//!
//! A snapshot freezes the state *at* an epoch boundary; everything that
//! steers the run afterwards — epoch ticks, admissions, removals,
//! policy switches — is appended here, one JSON line per event. Each
//! entry records `pre`: the runtime's epoch counter at the moment the
//! event executed. That single number is the whole consistency story:
//!
//! * the **first** entry of a log must carry `pre == snapshot.epoch`,
//!   otherwise the log belongs to a different (older or newer) snapshot
//!   and replaying it would fork history ([`verify_chain`], the
//!   stale-log guard);
//! * during [`crate::replay::replay_log`], *every* entry must match the
//!   runtime's live counter, so a divergence is caught at the exact
//!   entry where it happens, not as downstream garbage.
//!
//! The log is named after the snapshot it extends (`log-<epoch>.jsonl`)
//! so a pruned snapshot takes its log with it, and a crash between
//! "write snapshot" and "create next log" leaves nothing dangling. A
//! torn final line (the write the crash interrupted) is dropped on
//! load; a mangled line *before* the end is corruption and refuses to
//! load.

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

use copart_telemetry::Json;

use crate::codec::{dec_str, dec_u64, obj};
use crate::error::PersistError;

/// One input that steered the run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// One control period ran.
    Epoch,
    /// An application was admitted.
    Admit {
        /// Benchmark short name (resolved through the scenario's table).
        bench: String,
        /// Raw CLOS id the backend assigned — replay must reproduce it.
        group: u16,
    },
    /// An application was removed.
    Remove {
        /// Raw CLOS id of the removed group.
        group: u16,
    },
    /// The partitioning policy was switched.
    Policy {
        /// The new policy's label.
        name: String,
    },
}

/// One event-log entry: what happened, and at which epoch counter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogEntry {
    /// The runtime's epoch counter when the event executed.
    pub pre: u64,
    /// The event itself.
    pub kind: EventKind,
}

impl LogEntry {
    /// Serialises the entry to one JSON line (no trailing newline).
    pub fn to_line(&self) -> String {
        let mut members = vec![("pre", Json::Num(self.pre as f64))];
        match &self.kind {
            EventKind::Epoch => members.push(("op", Json::Str("epoch".to_string()))),
            EventKind::Admit { bench, group } => {
                members.push(("op", Json::Str("admit".to_string())));
                members.push(("bench", Json::Str(bench.clone())));
                members.push(("group", Json::Num(f64::from(*group))));
            }
            EventKind::Remove { group } => {
                members.push(("op", Json::Str("remove".to_string())));
                members.push(("group", Json::Num(f64::from(*group))));
            }
            EventKind::Policy { name } => {
                members.push(("op", Json::Str("policy".to_string())));
                members.push(("policy", Json::Str(name.clone())));
            }
        }
        obj(members).to_string()
    }

    /// Parses one JSON line.
    ///
    /// # Errors
    ///
    /// [`PersistError::Json`] / [`PersistError::Schema`] for a line that
    /// is not a well-formed entry.
    pub fn from_line(line: &str) -> Result<LogEntry, PersistError> {
        let j = Json::parse(line)?;
        let group = |j: &Json| -> Result<u16, PersistError> {
            u16::try_from(dec_u64(j, "group")?)
                .map_err(|_| PersistError::Schema("`group` overflows u16".to_string()))
        };
        let kind = match dec_str(&j, "op")? {
            "epoch" => EventKind::Epoch,
            "admit" => EventKind::Admit {
                bench: dec_str(&j, "bench")?.to_string(),
                group: group(&j)?,
            },
            "remove" => EventKind::Remove { group: group(&j)? },
            "policy" => EventKind::Policy {
                name: dec_str(&j, "policy")?.to_string(),
            },
            other => {
                return Err(PersistError::Schema(format!("unknown log op `{other}`")));
            }
        };
        Ok(LogEntry {
            pre: dec_u64(&j, "pre")?,
            kind,
        })
    }
}

/// The event-log file extending the snapshot taken at `snapshot_epoch`.
pub fn log_path(dir: &Path, snapshot_epoch: u64) -> PathBuf {
    dir.join(format!("log-{snapshot_epoch:020}.jsonl"))
}

/// An open, append-only event log.
#[derive(Debug)]
pub struct EventLog {
    file: fs::File,
    path: PathBuf,
    entries: u64,
}

impl EventLog {
    /// Creates (truncating) the log that extends the snapshot taken at
    /// `snapshot_epoch`.
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`] when the file cannot be created.
    pub fn create(dir: &Path, snapshot_epoch: u64) -> Result<EventLog, PersistError> {
        fs::create_dir_all(dir)?;
        let path = log_path(dir, snapshot_epoch);
        let file = fs::File::create(&path)?;
        Ok(EventLog {
            file,
            path,
            entries: 0,
        })
    }

    /// Reopens the log for appending after recovery. The file is
    /// rewritten with exactly `entries` (the validated prefix that
    /// replay executed), which discards any torn tail so subsequent
    /// appends extend a clean file.
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`] when the file cannot be rewritten.
    pub fn resume(
        dir: &Path,
        snapshot_epoch: u64,
        entries: &[LogEntry],
    ) -> Result<EventLog, PersistError> {
        let mut log = EventLog::create(dir, snapshot_epoch)?;
        for entry in entries {
            log.append(entry)?;
        }
        Ok(log)
    }

    /// Appends one entry and flushes it to the OS, so the entry survives
    /// a process kill (a torn write is tolerated by [`load_log`]).
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`] when the write fails.
    pub fn append(&mut self, entry: &LogEntry) -> Result<(), PersistError> {
        let mut line = entry.to_line();
        line.push('\n');
        self.file.write_all(line.as_bytes())?;
        self.file.flush()?;
        self.entries += 1;
        Ok(())
    }

    /// Entries appended through this handle.
    pub fn entries(&self) -> u64 {
        self.entries
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Loads the log extending `snapshot_epoch`. A missing file is an empty
/// log (crash before the first append); a torn final line is dropped.
///
/// # Errors
///
/// [`PersistError::Corrupt`] when a line *before* the tail fails to
/// parse — that is not a torn write, it is corruption.
pub fn load_log(dir: &Path, snapshot_epoch: u64) -> Result<Vec<LogEntry>, PersistError> {
    let path = log_path(dir, snapshot_epoch);
    let bytes = match fs::read(&path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e.into()),
    };
    // Anything after the final newline is a torn tail: drop it. (This
    // also handles invalid UTF-8 from a torn multi-byte write.)
    let upto = bytes.iter().rposition(|&b| b == b'\n').map_or(0, |p| p + 1);
    let text = std::str::from_utf8(&bytes[..upto])
        .map_err(|_| PersistError::Corrupt("event log is not UTF-8".to_string()))?;

    let lines: Vec<&str> = text.lines().collect();
    let mut entries = Vec::with_capacity(lines.len());
    for (i, line) in lines.iter().enumerate() {
        match LogEntry::from_line(line) {
            Ok(e) => entries.push(e),
            // The final newline-terminated line may still be a torn
            // page from the crash; everything earlier must parse.
            Err(_) if i + 1 == lines.len() => break,
            Err(e) => {
                return Err(PersistError::Corrupt(format!(
                    "event log line {}: {e}",
                    i + 1
                )));
            }
        }
    }
    Ok(entries)
}

/// The stale-log guard: a log may only be replayed over the snapshot it
/// chains onto. The first entry must have executed exactly at the
/// snapshot's epoch, and entries may never step backwards.
///
/// # Errors
///
/// [`PersistError::Chain`] when the first entry does not chain;
/// [`PersistError::Corrupt`] when entries are out of order.
pub fn verify_chain(snapshot_epoch: u64, entries: &[LogEntry]) -> Result<(), PersistError> {
    if let Some(first) = entries.first() {
        if first.pre != snapshot_epoch {
            return Err(PersistError::Chain {
                expected: snapshot_epoch,
                found: first.pre,
            });
        }
    }
    for pair in entries.windows(2) {
        if pair[1].pre < pair[0].pre {
            return Err(PersistError::Corrupt(format!(
                "event log steps backwards: {} after {}",
                pair[1].pre, pair[0].pre
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("copart-persist-log-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_entries() -> Vec<LogEntry> {
        vec![
            LogEntry {
                pre: 37,
                kind: EventKind::Epoch,
            },
            LogEntry {
                pre: 38,
                kind: EventKind::Admit {
                    bench: "mg".to_string(),
                    group: 4,
                },
            },
            LogEntry {
                pre: 42,
                kind: EventKind::Remove { group: 2 },
            },
            LogEntry {
                pre: 42,
                kind: EventKind::Policy {
                    name: "CAT-only".to_string(),
                },
            },
        ]
    }

    #[test]
    fn entries_round_trip_through_lines() {
        for e in sample_entries() {
            assert_eq!(LogEntry::from_line(&e.to_line()).unwrap(), e);
        }
    }

    #[test]
    fn append_load_round_trips() {
        let dir = tmpdir("roundtrip");
        let mut log = EventLog::create(&dir, 37).unwrap();
        for e in &sample_entries() {
            log.append(e).unwrap();
        }
        assert_eq!(log.entries(), 4);
        assert_eq!(load_log(&dir, 37).unwrap(), sample_entries());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_log_is_empty() {
        let dir = tmpdir("missing");
        assert!(load_log(&dir, 99).unwrap().is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_dropped_mid_file_corruption_is_not() {
        let dir = tmpdir("torn");
        let mut log = EventLog::create(&dir, 5).unwrap();
        let entries = sample_entries();
        for e in &entries {
            log.append(e).unwrap();
        }
        let path = log_path(&dir, 5);
        let full = fs::read(&path).unwrap();

        // Torn, unterminated tail: half of the last line.
        fs::write(&path, &full[..full.len() - 7]).unwrap();
        assert_eq!(load_log(&dir, 5).unwrap(), entries[..3].to_vec());

        // Mangled line in the middle: refuse.
        let mut mangled = full.clone();
        mangled[10] = b'#';
        fs::write(&path, &mangled).unwrap();
        assert!(matches!(load_log(&dir, 5), Err(PersistError::Corrupt(_))));
        fs::remove_dir_all(&dir).unwrap();
    }

    /// Satellite 2: the off-by-one at the snapshot boundary. A snapshot
    /// taken at epoch 37 accepts only a log whose first entry executed
    /// at exactly 37 — 36 (log predates the snapshot) and 38 (log lost
    /// its first entry) are both stale and must be rejected.
    #[test]
    fn chain_guard_rejects_off_by_one_both_ways() {
        let entry = |pre| LogEntry {
            pre,
            kind: EventKind::Epoch,
        };
        assert!(verify_chain(37, &[entry(37), entry(38)]).is_ok());
        assert!(verify_chain(37, &[]).is_ok());
        for stale in [36, 38] {
            match verify_chain(37, &[entry(stale)]) {
                Err(PersistError::Chain { expected, found }) => {
                    assert_eq!((expected, found), (37, stale));
                }
                other => panic!("stale log accepted: {other:?}"),
            }
        }
    }

    #[test]
    fn chain_guard_rejects_backwards_steps() {
        let entry = |pre| LogEntry {
            pre,
            kind: EventKind::Epoch,
        };
        assert!(matches!(
            verify_chain(10, &[entry(10), entry(12), entry(11)]),
            Err(PersistError::Corrupt(_))
        ));
    }
}
