//! Freezing and restoring RDT backends.
//!
//! The controller snapshot ([`copart_core::RuntimeSnapshot`]) is only
//! half the story: resuming bit-identically also needs the *backend*
//! back in the same state — the simulated machine (virtual time, CLOS
//! table, per-app trace-generator positions, cache contents), the
//! backend's group table, and, when faults are injected, the per-site
//! RNG stream positions. [`PersistableBackend`] is the seam: each
//! supported backend knows how to capture itself into a
//! [`BackendSnapshot`] and how to restore *in place* from one.
//!
//! Restoration is in-place by design: recovery first constructs the
//! runtime through the normal path (which applies the initial equal
//! split and consumes no information from the dead process), then
//! restores the backend underneath it, overwriting everything
//! construction touched. The fault decorator must be *disarmed* during
//! that construction so the rebuild consumes no fault-stream draws —
//! see [`copart_faults::FaultyBackend::set_armed`].

use copart_faults::{FaultStateSnapshot, FaultyBackend};
use copart_rdt::{RdtBackend, SimBackend};
use copart_sim::MachineSnapshot;

use crate::error::PersistError;

/// Complete dynamic state of a supported backend.
#[derive(Debug, Clone, PartialEq)]
pub enum BackendSnapshot {
    /// A bare simulator backend.
    Sim {
        /// The simulated machine.
        machine: MachineSnapshot,
        /// Group table as `(raw CLOS id, raw app handle)` pairs.
        groups: Vec<(u16, u32)>,
        /// Next CLOS id the backend would hand out.
        next_clos: u16,
    },
    /// A simulator backend wrapped in the fault-injection decorator.
    Faulty {
        /// The simulated machine.
        machine: MachineSnapshot,
        /// Group table as `(raw CLOS id, raw app handle)` pairs.
        groups: Vec<(u16, u32)>,
        /// Next CLOS id the backend would hand out.
        next_clos: u16,
        /// Per-site fault stream positions and injection stats.
        fault_state: FaultStateSnapshot,
    },
}

/// A backend that can freeze its complete dynamic state and later
/// restore it in place.
pub trait PersistableBackend: RdtBackend {
    /// Captures the backend's state.
    fn capture(&self) -> BackendSnapshot;

    /// Restores the backend's state in place, overwriting whatever the
    /// construction path left behind.
    ///
    /// # Errors
    ///
    /// [`PersistError::Schema`] when the snapshot was captured from a
    /// different backend kind, [`PersistError::Backend`] when the
    /// machine rejects the snapshot (foreign geometry).
    fn restore_from(&mut self, snap: &BackendSnapshot) -> Result<(), PersistError>;
}

impl PersistableBackend for SimBackend {
    fn capture(&self) -> BackendSnapshot {
        let (groups, next_clos) = self.export_groups();
        BackendSnapshot::Sim {
            machine: self.machine().snapshot(),
            groups,
            next_clos,
        }
    }

    fn restore_from(&mut self, snap: &BackendSnapshot) -> Result<(), PersistError> {
        match snap {
            BackendSnapshot::Sim {
                machine,
                groups,
                next_clos,
            } => {
                self.machine_mut()
                    .restore(machine)
                    .map_err(|e| PersistError::Corrupt(format!("machine restore: {e:?}")))?;
                self.import_groups(groups, *next_clos);
                Ok(())
            }
            BackendSnapshot::Faulty { .. } => Err(PersistError::Schema(
                "snapshot was captured from a faulty backend; this run has no fault plan"
                    .to_string(),
            )),
        }
    }
}

impl PersistableBackend for FaultyBackend<SimBackend> {
    fn capture(&self) -> BackendSnapshot {
        let (groups, next_clos) = self.inner().export_groups();
        BackendSnapshot::Faulty {
            machine: self.inner().machine().snapshot(),
            groups,
            next_clos,
            fault_state: self.fault_state(),
        }
    }

    fn restore_from(&mut self, snap: &BackendSnapshot) -> Result<(), PersistError> {
        match snap {
            BackendSnapshot::Faulty {
                machine,
                groups,
                next_clos,
                fault_state,
            } => {
                self.inner_mut()
                    .machine_mut()
                    .restore(machine)
                    .map_err(|e| PersistError::Corrupt(format!("machine restore: {e:?}")))?;
                self.inner_mut().import_groups(groups, *next_clos);
                self.restore_fault_state(fault_state);
                Ok(())
            }
            BackendSnapshot::Sim { .. } => Err(PersistError::Schema(
                "snapshot was captured from a bare sim backend; this run injects faults"
                    .to_string(),
            )),
        }
    }
}
