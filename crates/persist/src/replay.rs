//! Re-executing the event log over a restored runtime.
//!
//! Replay is *re-execution*, not re-application of recorded outputs:
//! an `epoch` entry runs a real control period against the restored
//! backend, an `admit` entry really admits the benchmark, and so on.
//! Because snapshot restoration puts every RNG stream, FSM, and cache
//! line back where it was, re-execution deterministically reproduces
//! the exact decisions (and trace events) the dead process made — and
//! the per-entry `pre` check proves it as it goes: the moment the
//! runtime's epoch counter disagrees with the log, replay stops with
//! [`PersistError::Chain`] instead of continuing down a forked history.
//!
//! Admission and policy switches need scenario context (benchmark
//! tables, runtime configs) that lives above this crate, so replay
//! delegates them to a caller-provided [`ReplayHooks`]; runs without
//! churn can pass [`NoHooks`].

use copart_core::ConsolidationRuntime;
use copart_rdt::{ClosId, RdtBackend};

use crate::error::PersistError;
use crate::log::{EventKind, LogEntry};

/// Scenario-level operations the log cannot perform by itself.
pub trait ReplayHooks<B: RdtBackend> {
    /// Re-admits `bench`; must land on exactly the recorded `group` (the
    /// backend's CLOS assignment is deterministic once its group table
    /// is restored, so a mismatch means the log and snapshot disagree).
    fn admit(
        &mut self,
        rt: &mut ConsolidationRuntime<B>,
        bench: &str,
        group: u16,
    ) -> Result<(), PersistError>;

    /// Re-applies a policy switch by label.
    fn set_policy(
        &mut self,
        rt: &mut ConsolidationRuntime<B>,
        name: &str,
    ) -> Result<(), PersistError>;
}

/// Hooks for logs that contain no admissions or policy switches.
#[derive(Debug, Default)]
pub struct NoHooks;

impl<B: RdtBackend> ReplayHooks<B> for NoHooks {
    fn admit(
        &mut self,
        _rt: &mut ConsolidationRuntime<B>,
        bench: &str,
        _group: u16,
    ) -> Result<(), PersistError> {
        Err(PersistError::Schema(format!(
            "log admits `{bench}` but no replay hooks were provided"
        )))
    }

    fn set_policy(
        &mut self,
        _rt: &mut ConsolidationRuntime<B>,
        name: &str,
    ) -> Result<(), PersistError> {
        Err(PersistError::Schema(format!(
            "log switches policy to `{name}` but no replay hooks were provided"
        )))
    }
}

/// Replays `entries` over a restored runtime. Returns the number of
/// control periods re-executed.
///
/// # Errors
///
/// [`PersistError::Chain`] the moment an entry's recorded epoch
/// disagrees with the runtime's live counter; hook and backend errors
/// pass through.
pub fn replay_log<B, H>(
    rt: &mut ConsolidationRuntime<B>,
    hooks: &mut H,
    entries: &[LogEntry],
) -> Result<u64, PersistError>
where
    B: RdtBackend,
    H: ReplayHooks<B>,
{
    let mut periods = 0u64;
    for entry in entries {
        let live = rt.epoch();
        if entry.pre != live {
            return Err(PersistError::Chain {
                expected: live,
                found: entry.pre,
            });
        }
        match &entry.kind {
            EventKind::Epoch => {
                rt.run_period()?;
                periods += 1;
            }
            EventKind::Admit { bench, group } => hooks.admit(rt, bench, *group)?,
            EventKind::Remove { group } => rt.remove_app(ClosId(*group))?,
            EventKind::Policy { name } => hooks.set_policy(rt, name)?,
        }
    }
    Ok(periods)
}
