//! Hand-built snapshot documents for unit tests. Every field is set to
//! an awkward value (top-bit u64s, non-representable decimals) so the
//! codec's bit-exactness is actually exercised.

use copart_core::next_state::AppliedEvents;
use copart_core::{
    AllocationState, AppRuntimeSnapshot, AppState, ExplorerSnapshot, Phase, RuntimeSnapshot,
    SensorSnapshot, SystemState,
};
use copart_faults::{FaultStateSnapshot, InjectionStats, SiteSnapshot};
use copart_rdt::MbaLevel;
use copart_sim::cache::{CacheLineSnapshot, CacheSnapshot};
use copart_sim::trace::{AccessPattern, TraceGenSnapshot};
use copart_sim::{AppSpec, MachineSnapshot, SimAppSnapshot};
use copart_telemetry::CounterSnapshot;

use crate::backend::BackendSnapshot;
use crate::codec::{SnapshotDoc, SnapshotMeta};
use crate::metrics::MetricsFrozen;

fn tiny_state() -> SystemState {
    SystemState {
        allocs: vec![
            AllocationState {
                ways: 13,
                mba: MbaLevel::new(70),
            },
            AllocationState {
                ways: 7,
                mba: MbaLevel::new(100),
            },
        ],
    }
}

fn tiny_machine() -> MachineSnapshot {
    let spec = AppSpec {
        name: "mg".to_string(),
        cores: 4,
        ipc_peak: 1.7,
        apki: 25.3,
        write_fraction: 0.31,
        mlp: 5.5,
        phases: vec![
            (
                0.8,
                AccessPattern::Zipf {
                    bytes: 64 << 20,
                    exponent: 0.99,
                },
            ),
            (0.2, AccessPattern::Stream { bytes: 512 << 20 }),
        ],
    };
    MachineSnapshot {
        time_ns: u64::MAX - 5,
        clos_table: vec![(0, 0xf_ffff, 100), (1, 0b1111, 50)],
        apps: vec![
            Some(SimAppSnapshot {
                spec,
                clos: 1,
                gen: TraceGenSnapshot {
                    cursors: vec![u64::MAX / 3, 17],
                    rng_state: 0x9e37_79b9_7f4a_7c15,
                    active: 1,
                    burst_left: 17,
                },
                ips_estimate: 2.5e9,
                miss_ratio: 0.1 + 0.2, // 0.30000000000000004: must survive
                wb_per_access: 0.25,
                instructions: 1e15 + 1.0,
                cycles: 3e15,
                accesses: 4.2e13,
                misses: 3.3e12,
                mem_traffic_bytes: 9.9e14,
            }),
            None,
        ],
        cache: CacheSnapshot {
            clock: 123_456_789_012_345,
            lines: vec![CacheLineSnapshot {
                index: 42,
                tag: u64::MAX >> 1,
                lru: 1 << 62,
                owner: 1,
                dirty: true,
            }],
        },
    }
}

/// A small but fully-populated snapshot document at `epoch`.
pub(crate) fn tiny_doc(epoch: u64) -> SnapshotDoc {
    let state = tiny_state();
    SnapshotDoc {
        meta: SnapshotMeta {
            mix: "M-Both".to_string(),
            n_apps: 2,
            policy: "CoPart".to_string(),
            seed: 42,
            faults: String::new(),
            daemon_epochs: epoch / 2,
        },
        runtime: RuntimeSnapshot {
            epoch,
            phase: Phase::Exploring,
            state: state.clone(),
            clusters: vec![0, 1],
            explorer: ExplorerSnapshot {
                rng_state: 0xdead_beef_cafe_f00d,
                retry_count: 2,
                unfairness_at_idle: 0.0625,
                best_seen: Some((1.0 / 3.0, state)),
            },
            apps: vec![AppRuntimeSnapshot {
                group: 1,
                name: "mg".to_string(),
                ips_full: 2.6e9,
                weight: 1.5,
                sensor: SensorSnapshot {
                    capacity: 8,
                    samples: vec![CounterSnapshot {
                        timestamp_ns: u64::MAX - 1,
                        instructions: 1 << 60,
                        cycles: (1 << 60) + 3,
                        llc_accesses: 77,
                        llc_misses: 7,
                    }],
                    ewma: [Some(2.5e9), None, Some(1e7), Some(0.1 + 0.2)],
                },
                llc_state: AppState::Demand,
                mba_state: AppState::Supply,
                prev_ips: 2.4e9,
                last_ips: 2.45e9,
                last_events: AppliedEvents {
                    granted_llc: true,
                    granted_mba: false,
                    reclaimed_llc: false,
                    reclaimed_mba: true,
                },
            }],
        },
        backend: BackendSnapshot::Faulty {
            machine: tiny_machine(),
            groups: vec![(1, 0)],
            next_clos: 2,
            fault_state: FaultStateSnapshot {
                sites: [
                    SiteSnapshot {
                        rng_state: 1,
                        calls: u64::MAX,
                    },
                    SiteSnapshot {
                        rng_state: 2,
                        calls: 0,
                    },
                    SiteSnapshot {
                        rng_state: u64::MAX,
                        calls: 3,
                    },
                    SiteSnapshot {
                        rng_state: 4,
                        calls: 4,
                    },
                    SiteSnapshot {
                        rng_state: 5,
                        calls: 5,
                    },
                ],
                stats: InjectionStats {
                    dropouts: 9,
                    cbm_write_faults: 1,
                    mba_write_faults: 0,
                    vanishes: 2,
                    clock_stalls: 1 << 54,
                },
            },
        },
        metrics: MetricsFrozen {
            counters: vec![("epochs".to_string(), epoch), ("transfers".to_string(), 9)],
            gauges: vec![("unfairness".to_string(), 0.1 + 0.2)],
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use copart_telemetry::Json;

    #[test]
    fn snapshot_doc_round_trips_bit_exactly() {
        let doc = tiny_doc(41);
        let text = doc.encode().to_string();
        assert!(!text.contains('\n'), "payload must be a single line");
        let back = SnapshotDoc::decode(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, doc);
        // And the re-encoding is byte-stable.
        assert_eq!(back.encode().to_string(), text);
    }

    #[test]
    fn sim_backend_snapshots_round_trip_too() {
        let mut doc = tiny_doc(7);
        doc.backend = BackendSnapshot::Sim {
            machine: tiny_machine(),
            groups: vec![(0, 0), (1, 1)],
            next_clos: 2,
        };
        let text = doc.encode().to_string();
        let back = SnapshotDoc::decode(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, doc);
    }

    #[test]
    fn non_finite_floats_survive_the_hex_path() {
        // `Json::Num` would flatten these to null; the hex-bits codec
        // must not. NaN breaks PartialEq, so compare bit patterns via
        // double encode instead.
        let mut doc = tiny_doc(3);
        if let Some(app) = doc.runtime.apps.first_mut() {
            app.prev_ips = f64::NAN;
            app.last_ips = f64::INFINITY;
            app.weight = -0.0;
        }
        let text = doc.encode().to_string();
        let back = SnapshotDoc::decode(&Json::parse(&text).unwrap()).unwrap();
        let app = &back.runtime.apps[0];
        assert_eq!(app.prev_ips.to_bits(), f64::NAN.to_bits());
        assert_eq!(app.last_ips, f64::INFINITY);
        assert_eq!(app.weight.to_bits(), (-0.0f64).to_bits());
    }

    /// Satellite bugfix (PR 10): the scenario seed must survive the wire
    /// format for the *full* `u64` range. `Json::Num` is exact only
    /// below 2⁵³, which is exactly where these seeds live.
    #[test]
    fn seeds_at_and_beyond_2_pow_53_round_trip_exactly() {
        for seed in [1u64 << 53, (1u64 << 53) + 1, u64::MAX] {
            let mut doc = tiny_doc(5);
            doc.meta.seed = seed;
            let text = doc.encode().to_string();
            let back = SnapshotDoc::decode(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(back.meta.seed, seed, "seed {seed} must be lossless");
            assert_eq!(back, doc);
            assert_eq!(
                back.encode().to_string(),
                text,
                "re-encoding is byte-stable"
            );
        }
    }

    /// Version-1 documents stored the seed as a plain JSON number; the
    /// decoder must keep accepting that shape.
    #[test]
    fn legacy_number_seed_still_decodes() {
        let doc = tiny_doc(5);
        let text = doc
            .encode()
            .to_string()
            .replace("\"seed\":\"000000000000002a\"", "\"seed\":42");
        assert_ne!(text, doc.encode().to_string(), "replacement must fire");
        let back = SnapshotDoc::decode(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.meta.seed, 42);
        assert_eq!(back, doc);
    }

    #[test]
    fn decode_rejects_missing_fields_with_the_key_name() {
        let doc = tiny_doc(1);
        let text = doc
            .encode()
            .to_string()
            .replace("\"runtime\"", "\"runtme\"");
        let err = SnapshotDoc::decode(&Json::parse(&text).unwrap()).unwrap_err();
        assert!(err.to_string().contains("runtime"), "got: {err}");
    }
}
