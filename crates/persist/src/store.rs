//! The on-disk snapshot store: atomic writes, digest-checked reads,
//! torn-file fallback, and pruning.
//!
//! A snapshot file is two lines:
//!
//! ```text
//! {"magic":"copart-snap","version":2,"epoch":42,"digest":"<fnv1a64 hex>","len":12345}
//! {...payload: the SnapshotDoc, single line...}
//! ```
//!
//! The header carries an FNV-1a digest and byte length of the payload,
//! so *any* truncation or corruption — a crash mid-`write(2)`, a torn
//! page, a disk filling up — is detected on read and the file is
//! skipped in favour of the previous good snapshot. Writes go through a
//! temp file + `rename(2)`, so a reader never observes a half-written
//! file under the final name; the digest covers the residual cases
//! (torn temp data surviving the rename on power loss).

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

use copart_telemetry::Json;

use crate::codec::{dec_str, dec_u64, SnapshotDoc};
use crate::error::PersistError;

/// First header field; anything else is not a snapshot.
pub const SNAP_MAGIC: &str = "copart-snap";

/// Current snapshot format version. Version 2 encodes `meta.seed` as a
/// hex string (exact for the full `u64` range) and carries the cluster
/// assignment of the LFOC-style clustering planner; version 1 stored
/// the seed as a plain JSON number, exact only below 2⁵³.
pub const SNAP_VERSION: u64 = 2;

/// Oldest format version `read_snapshot` still accepts. Version-1 files
/// decode through the legacy number path in the codec.
pub const SNAP_VERSION_MIN: u64 = 1;

/// FNV-1a 64-bit, the workspace's standard content digest.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The snapshot file for `epoch` inside `dir`. Zero-padded so
/// lexicographic and numeric order agree.
pub fn snapshot_path(dir: &Path, epoch: u64) -> PathBuf {
    dir.join(format!("snap-{epoch:020}.json"))
}

/// Serialises `doc` and writes it atomically into `dir`. Returns the
/// final path and the total bytes written.
///
/// # Errors
///
/// [`PersistError::Io`] when the directory cannot be written.
pub fn write_snapshot(dir: &Path, doc: &SnapshotDoc) -> Result<(PathBuf, u64), PersistError> {
    fs::create_dir_all(dir)?;
    let payload = doc.encode().to_string();
    let header = Json::Obj(vec![
        ("magic".to_string(), Json::Str(SNAP_MAGIC.to_string())),
        ("version".to_string(), Json::Num(SNAP_VERSION as f64)),
        ("epoch".to_string(), Json::Num(doc.epoch() as f64)),
        (
            "digest".to_string(),
            Json::Str(format!("{:016x}", fnv1a64(payload.as_bytes()))),
        ),
        ("len".to_string(), Json::Num(payload.len() as f64)),
    ])
    .to_string();
    let content = format!("{header}\n{payload}\n");

    let path = snapshot_path(dir, doc.epoch());
    let tmp = dir.join(format!(".snap-{:020}.tmp", doc.epoch()));
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(content.as_bytes())?;
        f.sync_all()?;
    }
    fs::rename(&tmp, &path)?;
    Ok((path, content.len() as u64))
}

/// Reads and fully validates one snapshot file.
///
/// # Errors
///
/// [`PersistError::Corrupt`] for a torn, truncated, or digest-mismatched
/// file; [`PersistError::Schema`] for a well-formed file of the wrong
/// shape; [`PersistError::Io`] when the file cannot be read at all.
pub fn read_snapshot(path: &Path) -> Result<SnapshotDoc, PersistError> {
    let content = fs::read_to_string(path)?;
    let (header_line, rest) = content
        .split_once('\n')
        .ok_or_else(|| PersistError::Corrupt("no header line".to_string()))?;
    let header = Json::parse(header_line)
        .map_err(|e| PersistError::Corrupt(format!("header is not JSON: {e}")))?;
    if dec_str(&header, "magic")? != SNAP_MAGIC {
        return Err(PersistError::Corrupt("bad magic".to_string()));
    }
    let version = dec_u64(&header, "version")?;
    if !(SNAP_VERSION_MIN..=SNAP_VERSION).contains(&version) {
        return Err(PersistError::Corrupt("unsupported version".to_string()));
    }
    let len = dec_u64(&header, "len")? as usize;
    let payload = rest.strip_suffix('\n').unwrap_or(rest);
    if payload.len() != len {
        return Err(PersistError::Corrupt(format!(
            "payload is {} bytes, header says {len}",
            payload.len()
        )));
    }
    let digest = u64::from_str_radix(dec_str(&header, "digest")?, 16)
        .map_err(|_| PersistError::Corrupt("digest is not hex".to_string()))?;
    if fnv1a64(payload.as_bytes()) != digest {
        return Err(PersistError::Corrupt("digest mismatch".to_string()));
    }
    let doc = SnapshotDoc::decode(
        &Json::parse(payload).map_err(|e| PersistError::Corrupt(format!("payload: {e}")))?,
    )?;
    if doc.epoch() != dec_u64(&header, "epoch")? {
        return Err(PersistError::Corrupt(
            "header/payload epoch mismatch".to_string(),
        ));
    }
    Ok(doc)
}

/// Every snapshot file in `dir`, as `(epoch, path)`, ascending by epoch.
/// Files that merely *look* like snapshots are listed; validation
/// happens on read.
pub fn list_snapshots(dir: &Path) -> Result<Vec<(u64, PathBuf)>, PersistError> {
    let mut found = Vec::new();
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(found),
        Err(e) => return Err(e.into()),
    };
    for entry in entries {
        let path = entry?.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if let Some(digits) = name
            .strip_prefix("snap-")
            .and_then(|r| r.strip_suffix(".json"))
        {
            if let Ok(epoch) = digits.parse::<u64>() {
                found.push((epoch, path));
            }
        }
    }
    found.sort();
    Ok(found)
}

/// The newest snapshot in `dir` that passes full validation, or `None`
/// when the directory holds no usable snapshot. Torn or corrupt files
/// are skipped — this is the crash-recovery entry point, and a crash
/// mid-write must cost at most one snapshot interval, never the run.
pub fn latest_good(dir: &Path) -> Result<Option<(SnapshotDoc, PathBuf)>, PersistError> {
    for (_, path) in list_snapshots(dir)?.into_iter().rev() {
        if let Ok(doc) = read_snapshot(&path) {
            return Ok(Some((doc, path)));
        }
    }
    Ok(None)
}

/// Deletes all but the newest `keep` snapshots, along with each deleted
/// snapshot's event log. Keeping two means one whole corrupt snapshot
/// still leaves a recovery point.
pub fn prune(dir: &Path, keep: usize) -> Result<(), PersistError> {
    let snaps = list_snapshots(dir)?;
    let excess = snaps.len().saturating_sub(keep);
    for (epoch, path) in snaps.into_iter().take(excess) {
        fs::remove_file(&path)?;
        let log = crate::log::log_path(dir, epoch);
        if log.exists() {
            fs::remove_file(&log)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::tiny_doc;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("copart-persist-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn write_read_round_trips_exactly() {
        let dir = tmpdir("roundtrip");
        let doc = tiny_doc(42);
        let (path, bytes) = write_snapshot(&dir, &doc).unwrap();
        assert!(bytes > 0);
        assert_eq!(read_snapshot(&path).unwrap(), doc);
        let (best, best_path) = latest_good(&dir).unwrap().unwrap();
        assert_eq!(best, doc);
        assert_eq!(best_path, path);
        fs::remove_dir_all(&dir).unwrap();
    }

    /// A hand-built version-1 file (plain-number seed) must still read:
    /// the store accepts the legacy format down to `SNAP_VERSION_MIN`.
    #[test]
    fn version_1_files_with_number_seeds_still_read() {
        let dir = tmpdir("v1");
        let doc = tiny_doc(9);
        let payload = doc
            .encode()
            .to_string()
            .replace("\"seed\":\"000000000000002a\"", "\"seed\":42");
        let header = Json::Obj(vec![
            ("magic".to_string(), Json::Str(SNAP_MAGIC.to_string())),
            ("version".to_string(), Json::Num(1.0)),
            ("epoch".to_string(), Json::Num(doc.epoch() as f64)),
            (
                "digest".to_string(),
                Json::Str(format!("{:016x}", fnv1a64(payload.as_bytes()))),
            ),
            ("len".to_string(), Json::Num(payload.len() as f64)),
        ])
        .to_string();
        let path = snapshot_path(&dir, doc.epoch());
        fs::write(&path, format!("{header}\n{payload}\n")).unwrap();
        let back = read_snapshot(&path).unwrap();
        assert_eq!(back.meta.seed, 42);
        assert_eq!(back, doc);

        // A version from the future is still rejected.
        let bad = format!(
            "{}\n{payload}\n",
            header.replace("\"version\":1", "\"version\":99")
        );
        fs::write(&path, bad).unwrap();
        match read_snapshot(&path) {
            Err(PersistError::Corrupt(msg)) => assert!(msg.contains("version"), "{msg}"),
            other => panic!("future version accepted: {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn latest_good_prefers_the_newest() {
        let dir = tmpdir("newest");
        write_snapshot(&dir, &tiny_doc(10)).unwrap();
        write_snapshot(&dir, &tiny_doc(20)).unwrap();
        let (best, _) = latest_good(&dir).unwrap().unwrap();
        assert_eq!(best.epoch(), 20);
        fs::remove_dir_all(&dir).unwrap();
    }

    /// Satellite 1: truncate the newest snapshot at *every* byte offset;
    /// recovery must fall back to the previous good snapshot (or accept
    /// the file only once every payload byte survived).
    #[test]
    fn truncation_at_every_byte_offset_falls_back() {
        let dir = tmpdir("truncate");
        let old = tiny_doc(10);
        write_snapshot(&dir, &old).unwrap();
        let new = tiny_doc(20);
        let (new_path, _) = write_snapshot(&dir, &new).unwrap();
        let full = fs::read(&new_path).unwrap();
        // Everything before the trailing newline is load-bearing.
        let min_valid = full.len() - 1;

        for cut in 0..=full.len() {
            fs::write(&new_path, &full[..cut]).unwrap();
            let (best, _) = latest_good(&dir)
                .unwrap()
                .unwrap_or_else(|| panic!("no snapshot recovered at cut {cut}"));
            if cut < min_valid {
                assert_eq!(best, old, "cut {cut} must fall back to epoch 10");
            } else {
                assert_eq!(best, new, "cut {cut} keeps the full payload");
            }
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bit_corruption_is_detected_by_the_digest() {
        let dir = tmpdir("bitflip");
        let doc = tiny_doc(7);
        let (path, _) = write_snapshot(&dir, &doc).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        // Flip one bit in the middle of the payload.
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        match read_snapshot(&path) {
            Err(PersistError::Corrupt(_)) | Err(PersistError::Schema(_)) => {}
            other => panic!("corruption not detected: {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn prune_keeps_the_newest_and_drops_old_logs() {
        let dir = tmpdir("prune");
        for epoch in [10, 20, 30] {
            write_snapshot(&dir, &tiny_doc(epoch)).unwrap();
            fs::write(crate::log::log_path(&dir, epoch), "").unwrap();
        }
        prune(&dir, 2).unwrap();
        let left: Vec<u64> = list_snapshots(&dir)
            .unwrap()
            .into_iter()
            .map(|(e, _)| e)
            .collect();
        assert_eq!(left, vec![20, 30]);
        assert!(!crate::log::log_path(&dir, 10).exists());
        assert!(crate::log::log_path(&dir, 20).exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_or_missing_dir_recovers_nothing() {
        let dir = tmpdir("empty");
        assert!(latest_good(&dir).unwrap().is_none());
        fs::remove_dir_all(&dir).unwrap();
        assert!(latest_good(&dir).unwrap().is_none());
    }
}
