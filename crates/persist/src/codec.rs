//! Bit-exact JSON encoding of every snapshot type.
//!
//! The recovery contract is *byte-identical resumption*, so the codec
//! cannot tolerate the usual JSON number laundering: an `f64` that loses
//! one ulp on the way through a decimal representation changes an EWMA,
//! which changes a classifier verdict three epochs later. Every `f64`
//! therefore travels as the hex of its IEEE-754 bit pattern, and every
//! `u64` that may exceed 2⁵³ (timestamps, cumulative counters, RNG
//! words, cache tags) as a hex string. Small structural integers (way
//! counts, CLOS ids, epoch counters) stay plain JSON numbers for
//! readability — they are exact well below 2⁵³.

use copart_core::next_state::AppliedEvents;
use copart_core::AllocationState;
use copart_core::{
    AppRuntimeSnapshot, AppState, ExplorerSnapshot, Phase, RuntimeSnapshot, SensorSnapshot,
    SystemState,
};
use copart_faults::{FaultStateSnapshot, InjectionStats, SiteSnapshot};
use copart_rdt::MbaLevel;
use copart_sim::trace::TraceGenSnapshot;
use copart_sim::{AppSpec, MachineSnapshot, SimAppSnapshot};
use copart_telemetry::{CounterSnapshot, Json};

use crate::backend::BackendSnapshot;
use crate::error::PersistError;
use crate::metrics::MetricsFrozen;

use copart_sim::cache::{CacheLineSnapshot, CacheSnapshot};
use copart_sim::trace::AccessPattern;

/// Builds an object from borrowed keys.
pub(crate) fn obj(members: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        members
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// A `u64` as a 16-digit hex string — exact for the full range.
pub(crate) fn hex_u64(v: u64) -> Json {
    Json::Str(format!("{v:016x}"))
}

/// An `f64` as the hex of its bit pattern — bit-exact, NaN-safe.
pub(crate) fn hex_f64(v: f64) -> Json {
    hex_u64(v.to_bits())
}

fn schema(what: impl Into<String>) -> PersistError {
    PersistError::Schema(what.into())
}

/// Looks up a required object member.
pub(crate) fn req<'a>(j: &'a Json, key: &str) -> Result<&'a Json, PersistError> {
    j.get(key).ok_or_else(|| schema(format!("missing `{key}`")))
}

/// A required plain-number `u64` member.
pub(crate) fn dec_u64(j: &Json, key: &str) -> Result<u64, PersistError> {
    req(j, key)?
        .as_u64()
        .ok_or_else(|| schema(format!("`{key}` is not a u64")))
}

fn dec_u32(j: &Json, key: &str) -> Result<u32, PersistError> {
    u32::try_from(dec_u64(j, key)?).map_err(|_| schema(format!("`{key}` overflows u32")))
}

fn dec_u16(j: &Json, key: &str) -> Result<u16, PersistError> {
    u16::try_from(dec_u64(j, key)?).map_err(|_| schema(format!("`{key}` overflows u16")))
}

fn hex_word(s: &str, key: &str) -> Result<u64, PersistError> {
    u64::from_str_radix(s, 16).map_err(|_| schema(format!("`{key}` is not hex")))
}

/// A required hex-string `u64` member.
pub(crate) fn dec_hex_u64(j: &Json, key: &str) -> Result<u64, PersistError> {
    let s = req(j, key)?
        .as_str()
        .ok_or_else(|| schema(format!("`{key}` is not a hex string")))?;
    hex_word(s, key)
}

/// A required hex-bits `f64` member.
pub(crate) fn dec_hex_f64(j: &Json, key: &str) -> Result<f64, PersistError> {
    Ok(f64::from_bits(dec_hex_u64(j, key)?))
}

/// A `u64` that is a hex string in the current format but was a plain
/// JSON number in format version 1. The legacy number path is exact
/// only below 2⁵³ — which is precisely why the field moved to hex — but
/// every version-1 snapshot in the wild was written through `as f64`,
/// so reading it back the same way reproduces the stored value.
pub(crate) fn dec_u64_compat(j: &Json, key: &str) -> Result<u64, PersistError> {
    match req(j, key)? {
        Json::Str(s) => hex_word(s, key),
        other => other
            .as_u64()
            .ok_or_else(|| schema(format!("`{key}` is neither hex nor a u64"))),
    }
}

/// A required string member.
pub(crate) fn dec_str<'a>(j: &'a Json, key: &str) -> Result<&'a str, PersistError> {
    req(j, key)?
        .as_str()
        .ok_or_else(|| schema(format!("`{key}` is not a string")))
}

fn dec_bool(j: &Json, key: &str) -> Result<bool, PersistError> {
    req(j, key)?
        .as_bool()
        .ok_or_else(|| schema(format!("`{key}` is not a bool")))
}

fn dec_arr<'a>(j: &'a Json, key: &str) -> Result<&'a [Json], PersistError> {
    req(j, key)?
        .as_arr()
        .ok_or_else(|| schema(format!("`{key}` is not an array")))
}

// ---------------------------------------------------------------------
// telemetry
// ---------------------------------------------------------------------

fn enc_counter_snapshot(s: &CounterSnapshot) -> Json {
    obj(vec![
        ("t", hex_u64(s.timestamp_ns)),
        ("i", hex_u64(s.instructions)),
        ("c", hex_u64(s.cycles)),
        ("a", hex_u64(s.llc_accesses)),
        ("m", hex_u64(s.llc_misses)),
    ])
}

fn dec_counter_snapshot(j: &Json) -> Result<CounterSnapshot, PersistError> {
    Ok(CounterSnapshot {
        timestamp_ns: dec_hex_u64(j, "t")?,
        instructions: dec_hex_u64(j, "i")?,
        cycles: dec_hex_u64(j, "c")?,
        llc_accesses: dec_hex_u64(j, "a")?,
        llc_misses: dec_hex_u64(j, "m")?,
    })
}

// ---------------------------------------------------------------------
// core: sensor / classifier / explorer / runtime
// ---------------------------------------------------------------------

fn enc_opt_f64(v: Option<f64>) -> Json {
    match v {
        Some(x) => hex_f64(x),
        None => Json::Null,
    }
}

fn dec_opt_f64(j: &Json, what: &str) -> Result<Option<f64>, PersistError> {
    match j {
        Json::Null => Ok(None),
        Json::Str(s) => Ok(Some(f64::from_bits(hex_word(s, what)?))),
        _ => Err(schema(format!("`{what}` is neither null nor hex"))),
    }
}

fn enc_sensor(s: &SensorSnapshot) -> Json {
    obj(vec![
        ("capacity", Json::Num(s.capacity as f64)),
        (
            "samples",
            Json::Arr(s.samples.iter().map(enc_counter_snapshot).collect()),
        ),
        (
            "ewma",
            Json::Arr(s.ewma.iter().map(|&v| enc_opt_f64(v)).collect()),
        ),
    ])
}

fn dec_sensor(j: &Json) -> Result<SensorSnapshot, PersistError> {
    let samples = dec_arr(j, "samples")?
        .iter()
        .map(dec_counter_snapshot)
        .collect::<Result<Vec<_>, _>>()?;
    let raw = dec_arr(j, "ewma")?;
    if raw.len() != 4 {
        return Err(schema("`ewma` must have 4 entries"));
    }
    let mut ewma = [None; 4];
    for (slot, v) in ewma.iter_mut().zip(raw) {
        *slot = dec_opt_f64(v, "ewma")?;
    }
    Ok(SensorSnapshot {
        capacity: dec_u64(j, "capacity")? as usize,
        samples,
        ewma,
    })
}

fn enc_app_state(s: AppState) -> Json {
    Json::Str(
        match s {
            AppState::Supply => "supply",
            AppState::Maintain => "maintain",
            AppState::Demand => "demand",
        }
        .to_string(),
    )
}

fn dec_app_state(j: &Json, key: &str) -> Result<AppState, PersistError> {
    match dec_str(j, key)? {
        "supply" => Ok(AppState::Supply),
        "maintain" => Ok(AppState::Maintain),
        "demand" => Ok(AppState::Demand),
        other => Err(schema(format!("unknown app state `{other}`"))),
    }
}

fn enc_phase(p: Phase) -> Json {
    Json::Str(
        match p {
            Phase::Profiling => "profiling",
            Phase::Exploring => "exploring",
            Phase::Idle => "idle",
        }
        .to_string(),
    )
}

fn dec_phase(j: &Json) -> Result<Phase, PersistError> {
    match dec_str(j, "phase")? {
        "profiling" => Ok(Phase::Profiling),
        "exploring" => Ok(Phase::Exploring),
        "idle" => Ok(Phase::Idle),
        other => Err(schema(format!("unknown phase `{other}`"))),
    }
}

fn enc_events(e: &AppliedEvents) -> Json {
    obj(vec![
        ("granted_llc", Json::Bool(e.granted_llc)),
        ("granted_mba", Json::Bool(e.granted_mba)),
        ("reclaimed_llc", Json::Bool(e.reclaimed_llc)),
        ("reclaimed_mba", Json::Bool(e.reclaimed_mba)),
    ])
}

fn dec_events(j: &Json) -> Result<AppliedEvents, PersistError> {
    Ok(AppliedEvents {
        granted_llc: dec_bool(j, "granted_llc")?,
        granted_mba: dec_bool(j, "granted_mba")?,
        reclaimed_llc: dec_bool(j, "reclaimed_llc")?,
        reclaimed_mba: dec_bool(j, "reclaimed_mba")?,
    })
}

fn enc_system_state(s: &SystemState) -> Json {
    Json::Arr(
        s.allocs
            .iter()
            .map(|a| {
                obj(vec![
                    ("ways", Json::Num(f64::from(a.ways))),
                    ("mba", Json::Num(f64::from(a.mba.percent()))),
                ])
            })
            .collect(),
    )
}

fn dec_system_state(j: &Json, key: &str) -> Result<SystemState, PersistError> {
    let allocs = req(j, key)?
        .as_arr()
        .ok_or_else(|| schema(format!("`{key}` is not an array")))?
        .iter()
        .map(|a| {
            Ok(AllocationState {
                ways: dec_u32(a, "ways")?,
                mba: MbaLevel::new(
                    u8::try_from(dec_u64(a, "mba")?).map_err(|_| schema("`mba` overflows u8"))?,
                ),
            })
        })
        .collect::<Result<Vec<_>, PersistError>>()?;
    Ok(SystemState { allocs })
}

fn enc_explorer(e: &ExplorerSnapshot) -> Json {
    let best = match &e.best_seen {
        None => Json::Null,
        Some((unfairness, state)) => obj(vec![
            ("unfairness", hex_f64(*unfairness)),
            ("state", enc_system_state(state)),
        ]),
    };
    obj(vec![
        ("rng_state", hex_u64(e.rng_state)),
        ("retry_count", Json::Num(f64::from(e.retry_count))),
        ("unfairness_at_idle", hex_f64(e.unfairness_at_idle)),
        ("best_seen", best),
    ])
}

fn dec_explorer(j: &Json) -> Result<ExplorerSnapshot, PersistError> {
    let best_seen = match req(j, "best_seen")? {
        Json::Null => None,
        b => Some((dec_hex_f64(b, "unfairness")?, dec_system_state(b, "state")?)),
    };
    Ok(ExplorerSnapshot {
        rng_state: dec_hex_u64(j, "rng_state")?,
        retry_count: dec_u32(j, "retry_count")?,
        unfairness_at_idle: dec_hex_f64(j, "unfairness_at_idle")?,
        best_seen,
    })
}

/// Encodes one application's frozen controller state — the bit-exact
/// payload the fleet's migration tickets carry between nodes.
pub fn enc_app_runtime(a: &AppRuntimeSnapshot) -> Json {
    obj(vec![
        ("group", Json::Num(f64::from(a.group))),
        ("name", Json::Str(a.name.clone())),
        ("ips_full", hex_f64(a.ips_full)),
        ("weight", hex_f64(a.weight)),
        ("sensor", enc_sensor(&a.sensor)),
        ("llc_state", enc_app_state(a.llc_state)),
        ("mba_state", enc_app_state(a.mba_state)),
        ("prev_ips", hex_f64(a.prev_ips)),
        ("last_ips", hex_f64(a.last_ips)),
        ("last_events", enc_events(&a.last_events)),
    ])
}

/// Decodes one application's frozen controller state (inverse of
/// [`enc_app_runtime`]).
///
/// # Errors
///
/// Fails on missing fields or malformed hex-float encodings.
pub fn dec_app_runtime(j: &Json) -> Result<AppRuntimeSnapshot, PersistError> {
    Ok(AppRuntimeSnapshot {
        group: dec_u16(j, "group")?,
        name: dec_str(j, "name")?.to_string(),
        ips_full: dec_hex_f64(j, "ips_full")?,
        weight: dec_hex_f64(j, "weight")?,
        sensor: dec_sensor(req(j, "sensor")?)?,
        llc_state: dec_app_state(j, "llc_state")?,
        mba_state: dec_app_state(j, "mba_state")?,
        prev_ips: dec_hex_f64(j, "prev_ips")?,
        last_ips: dec_hex_f64(j, "last_ips")?,
        last_events: dec_events(req(j, "last_events")?)?,
    })
}

/// Encodes a frozen controller state.
pub fn enc_runtime(r: &RuntimeSnapshot) -> Json {
    obj(vec![
        ("epoch", Json::Num(r.epoch as f64)),
        ("phase", enc_phase(r.phase)),
        ("state", enc_system_state(&r.state)),
        (
            "clusters",
            Json::Arr(
                r.clusters
                    .iter()
                    .map(|&c| Json::Num(f64::from(c)))
                    .collect(),
            ),
        ),
        ("explorer", enc_explorer(&r.explorer)),
        (
            "apps",
            Json::Arr(r.apps.iter().map(enc_app_runtime).collect()),
        ),
    ])
}

/// Decodes a frozen controller state.
pub fn dec_runtime(j: &Json) -> Result<RuntimeSnapshot, PersistError> {
    Ok(RuntimeSnapshot {
        epoch: dec_u64(j, "epoch")?,
        phase: dec_phase(j)?,
        state: dec_system_state(j, "state")?,
        // Absent in snapshots written before clustering existed; an
        // empty vector is also the live "no clustering" value, so no
        // version bump is needed for this field.
        clusters: match j.get("clusters") {
            Some(arr) => arr
                .as_arr()
                .ok_or_else(|| schema("`clusters` is not an array".to_string()))?
                .iter()
                .map(|c| {
                    c.as_u64()
                        .and_then(|v| u16::try_from(v).ok())
                        .ok_or_else(|| schema("`clusters` entry is not a u16".to_string()))
                })
                .collect::<Result<Vec<_>, _>>()?,
            None => Vec::new(),
        },
        explorer: dec_explorer(req(j, "explorer")?)?,
        apps: dec_arr(j, "apps")?
            .iter()
            .map(dec_app_runtime)
            .collect::<Result<Vec<_>, _>>()?,
    })
}

// ---------------------------------------------------------------------
// sim: trace generator / app spec / cache / machine
// ---------------------------------------------------------------------

fn enc_pattern(p: &AccessPattern) -> Json {
    match p {
        AccessPattern::WorkingSetLoop { bytes, stride } => obj(vec![
            ("kind", Json::Str("wsl".to_string())),
            ("bytes", hex_u64(*bytes)),
            ("stride", hex_u64(*stride)),
        ]),
        AccessPattern::Stream { bytes } => obj(vec![
            ("kind", Json::Str("stream".to_string())),
            ("bytes", hex_u64(*bytes)),
        ]),
        AccessPattern::UniformRandom { bytes } => obj(vec![
            ("kind", Json::Str("rand".to_string())),
            ("bytes", hex_u64(*bytes)),
        ]),
        AccessPattern::Zipf { bytes, exponent } => obj(vec![
            ("kind", Json::Str("zipf".to_string())),
            ("bytes", hex_u64(*bytes)),
            ("exponent", hex_f64(*exponent)),
        ]),
        AccessPattern::PointerChase { bytes } => obj(vec![
            ("kind", Json::Str("chase".to_string())),
            ("bytes", hex_u64(*bytes)),
        ]),
    }
}

fn dec_pattern(j: &Json) -> Result<AccessPattern, PersistError> {
    let bytes = dec_hex_u64(j, "bytes")?;
    match dec_str(j, "kind")? {
        "wsl" => Ok(AccessPattern::WorkingSetLoop {
            bytes,
            stride: dec_hex_u64(j, "stride")?,
        }),
        "stream" => Ok(AccessPattern::Stream { bytes }),
        "rand" => Ok(AccessPattern::UniformRandom { bytes }),
        "zipf" => Ok(AccessPattern::Zipf {
            bytes,
            exponent: dec_hex_f64(j, "exponent")?,
        }),
        "chase" => Ok(AccessPattern::PointerChase { bytes }),
        other => Err(schema(format!("unknown access pattern `{other}`"))),
    }
}

fn enc_spec(s: &AppSpec) -> Json {
    obj(vec![
        ("name", Json::Str(s.name.clone())),
        ("cores", Json::Num(f64::from(s.cores))),
        ("ipc_peak", hex_f64(s.ipc_peak)),
        ("apki", hex_f64(s.apki)),
        ("write_fraction", hex_f64(s.write_fraction)),
        ("mlp", hex_f64(s.mlp)),
        (
            "phases",
            Json::Arr(
                s.phases
                    .iter()
                    .map(|(w, p)| obj(vec![("weight", hex_f64(*w)), ("pattern", enc_pattern(p))]))
                    .collect(),
            ),
        ),
    ])
}

fn dec_spec(j: &Json) -> Result<AppSpec, PersistError> {
    Ok(AppSpec {
        name: dec_str(j, "name")?.to_string(),
        cores: dec_u32(j, "cores")?,
        ipc_peak: dec_hex_f64(j, "ipc_peak")?,
        apki: dec_hex_f64(j, "apki")?,
        write_fraction: dec_hex_f64(j, "write_fraction")?,
        mlp: dec_hex_f64(j, "mlp")?,
        phases: dec_arr(j, "phases")?
            .iter()
            .map(|p| Ok((dec_hex_f64(p, "weight")?, dec_pattern(req(p, "pattern")?)?)))
            .collect::<Result<Vec<_>, PersistError>>()?,
    })
}

fn enc_trace_gen(g: &TraceGenSnapshot) -> Json {
    obj(vec![
        (
            "cursors",
            Json::Arr(g.cursors.iter().map(|&c| hex_u64(c)).collect()),
        ),
        ("rng_state", hex_u64(g.rng_state)),
        ("active", Json::Num(g.active as f64)),
        ("burst_left", Json::Num(f64::from(g.burst_left))),
    ])
}

fn dec_trace_gen(j: &Json) -> Result<TraceGenSnapshot, PersistError> {
    Ok(TraceGenSnapshot {
        cursors: dec_arr(j, "cursors")?
            .iter()
            .map(|c| {
                c.as_str()
                    .ok_or_else(|| schema("`cursors` entry is not hex"))
                    .and_then(|s| hex_word(s, "cursors"))
            })
            .collect::<Result<Vec<_>, _>>()?,
        rng_state: dec_hex_u64(j, "rng_state")?,
        active: dec_u64(j, "active")? as usize,
        burst_left: dec_u32(j, "burst_left")?,
    })
}

fn enc_sim_app(a: &SimAppSnapshot) -> Json {
    obj(vec![
        ("spec", enc_spec(&a.spec)),
        ("clos", Json::Num(f64::from(a.clos))),
        ("gen", enc_trace_gen(&a.gen)),
        ("ips_estimate", hex_f64(a.ips_estimate)),
        ("miss_ratio", hex_f64(a.miss_ratio)),
        ("wb_per_access", hex_f64(a.wb_per_access)),
        ("instructions", hex_f64(a.instructions)),
        ("cycles", hex_f64(a.cycles)),
        ("accesses", hex_f64(a.accesses)),
        ("misses", hex_f64(a.misses)),
        ("mem_traffic_bytes", hex_f64(a.mem_traffic_bytes)),
    ])
}

fn dec_sim_app(j: &Json) -> Result<SimAppSnapshot, PersistError> {
    Ok(SimAppSnapshot {
        spec: dec_spec(req(j, "spec")?)?,
        clos: dec_u16(j, "clos")?,
        gen: dec_trace_gen(req(j, "gen")?)?,
        ips_estimate: dec_hex_f64(j, "ips_estimate")?,
        miss_ratio: dec_hex_f64(j, "miss_ratio")?,
        wb_per_access: dec_hex_f64(j, "wb_per_access")?,
        instructions: dec_hex_f64(j, "instructions")?,
        cycles: dec_hex_f64(j, "cycles")?,
        accesses: dec_hex_f64(j, "accesses")?,
        misses: dec_hex_f64(j, "misses")?,
        mem_traffic_bytes: dec_hex_f64(j, "mem_traffic_bytes")?,
    })
}

fn enc_cache(c: &CacheSnapshot) -> Json {
    obj(vec![
        ("clock", hex_u64(c.clock)),
        (
            "lines",
            Json::Arr(
                c.lines
                    .iter()
                    .map(|l| {
                        obj(vec![
                            ("index", hex_u64(l.index)),
                            ("tag", hex_u64(l.tag)),
                            ("lru", hex_u64(l.lru)),
                            ("owner", Json::Num(f64::from(l.owner))),
                            ("dirty", Json::Bool(l.dirty)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn dec_cache(j: &Json) -> Result<CacheSnapshot, PersistError> {
    Ok(CacheSnapshot {
        clock: dec_hex_u64(j, "clock")?,
        lines: dec_arr(j, "lines")?
            .iter()
            .map(|l| {
                Ok(CacheLineSnapshot {
                    index: dec_hex_u64(l, "index")?,
                    tag: dec_hex_u64(l, "tag")?,
                    lru: dec_hex_u64(l, "lru")?,
                    owner: dec_u16(l, "owner")?,
                    dirty: dec_bool(l, "dirty")?,
                })
            })
            .collect::<Result<Vec<_>, PersistError>>()?,
    })
}

/// Encodes a frozen simulated machine.
pub fn enc_machine(m: &MachineSnapshot) -> Json {
    obj(vec![
        ("time_ns", hex_u64(m.time_ns)),
        (
            "clos",
            Json::Arr(
                m.clos_table
                    .iter()
                    .map(|&(id, cbm, mba)| {
                        obj(vec![
                            ("id", Json::Num(f64::from(id))),
                            ("cbm", Json::Num(f64::from(cbm))),
                            ("mba", Json::Num(f64::from(mba))),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "apps",
            Json::Arr(
                m.apps
                    .iter()
                    .map(|slot| match slot {
                        Some(a) => enc_sim_app(a),
                        None => Json::Null,
                    })
                    .collect(),
            ),
        ),
        ("cache", enc_cache(&m.cache)),
    ])
}

/// Decodes a frozen simulated machine.
pub fn dec_machine(j: &Json) -> Result<MachineSnapshot, PersistError> {
    Ok(MachineSnapshot {
        time_ns: dec_hex_u64(j, "time_ns")?,
        clos_table: dec_arr(j, "clos")?
            .iter()
            .map(|c| {
                Ok((
                    dec_u16(c, "id")?,
                    dec_u32(c, "cbm")?,
                    u8::try_from(dec_u64(c, "mba")?).map_err(|_| schema("`mba` overflows u8"))?,
                ))
            })
            .collect::<Result<Vec<_>, PersistError>>()?,
        apps: dec_arr(j, "apps")?
            .iter()
            .map(|slot| match slot {
                Json::Null => Ok(None),
                a => dec_sim_app(a).map(Some),
            })
            .collect::<Result<Vec<_>, _>>()?,
        cache: dec_cache(req(j, "cache")?)?,
    })
}

// ---------------------------------------------------------------------
// faults
// ---------------------------------------------------------------------

/// Encodes frozen fault-injection state.
pub fn enc_fault_state(f: &FaultStateSnapshot) -> Json {
    obj(vec![
        (
            "sites",
            Json::Arr(
                f.sites
                    .iter()
                    .map(|s| {
                        obj(vec![
                            ("rng_state", hex_u64(s.rng_state)),
                            ("calls", hex_u64(s.calls)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "stats",
            obj(vec![
                ("dropouts", hex_u64(f.stats.dropouts)),
                ("cbm_write_faults", hex_u64(f.stats.cbm_write_faults)),
                ("mba_write_faults", hex_u64(f.stats.mba_write_faults)),
                ("vanishes", hex_u64(f.stats.vanishes)),
                ("clock_stalls", hex_u64(f.stats.clock_stalls)),
            ]),
        ),
    ])
}

/// Decodes frozen fault-injection state.
pub fn dec_fault_state(j: &Json) -> Result<FaultStateSnapshot, PersistError> {
    let raw = dec_arr(j, "sites")?;
    if raw.len() != 5 {
        return Err(schema("`sites` must have 5 entries"));
    }
    let mut sites = [SiteSnapshot {
        rng_state: 0,
        calls: 0,
    }; 5];
    for (slot, s) in sites.iter_mut().zip(raw) {
        *slot = SiteSnapshot {
            rng_state: dec_hex_u64(s, "rng_state")?,
            calls: dec_hex_u64(s, "calls")?,
        };
    }
    let stats = req(j, "stats")?;
    Ok(FaultStateSnapshot {
        sites,
        stats: InjectionStats {
            dropouts: dec_hex_u64(stats, "dropouts")?,
            cbm_write_faults: dec_hex_u64(stats, "cbm_write_faults")?,
            mba_write_faults: dec_hex_u64(stats, "mba_write_faults")?,
            vanishes: dec_hex_u64(stats, "vanishes")?,
            clock_stalls: dec_hex_u64(stats, "clock_stalls")?,
        },
    })
}

// ---------------------------------------------------------------------
// backend
// ---------------------------------------------------------------------

fn enc_groups(groups: &[(u16, u32)]) -> Json {
    Json::Arr(
        groups
            .iter()
            .map(|&(clos, app)| {
                obj(vec![
                    ("clos", Json::Num(f64::from(clos))),
                    ("app", Json::Num(f64::from(app))),
                ])
            })
            .collect(),
    )
}

fn dec_groups(j: &Json) -> Result<Vec<(u16, u32)>, PersistError> {
    dec_arr(j, "groups")?
        .iter()
        .map(|g| Ok((dec_u16(g, "clos")?, dec_u32(g, "app")?)))
        .collect()
}

/// Encodes a frozen backend.
pub fn enc_backend(b: &BackendSnapshot) -> Json {
    match b {
        BackendSnapshot::Sim {
            machine,
            groups,
            next_clos,
        } => obj(vec![
            ("kind", Json::Str("sim".to_string())),
            ("machine", enc_machine(machine)),
            ("groups", enc_groups(groups)),
            ("next_clos", Json::Num(f64::from(*next_clos))),
        ]),
        BackendSnapshot::Faulty {
            machine,
            groups,
            next_clos,
            fault_state,
        } => obj(vec![
            ("kind", Json::Str("faulty".to_string())),
            ("machine", enc_machine(machine)),
            ("groups", enc_groups(groups)),
            ("next_clos", Json::Num(f64::from(*next_clos))),
            ("fault_state", enc_fault_state(fault_state)),
        ]),
    }
}

/// Decodes a frozen backend.
pub fn dec_backend(j: &Json) -> Result<BackendSnapshot, PersistError> {
    let machine = dec_machine(req(j, "machine")?)?;
    let groups = dec_groups(j)?;
    let next_clos = dec_u16(j, "next_clos")?;
    match dec_str(j, "kind")? {
        "sim" => Ok(BackendSnapshot::Sim {
            machine,
            groups,
            next_clos,
        }),
        "faulty" => Ok(BackendSnapshot::Faulty {
            machine,
            groups,
            next_clos,
            fault_state: dec_fault_state(req(j, "fault_state")?)?,
        }),
        other => Err(schema(format!("unknown backend kind `{other}`"))),
    }
}

// ---------------------------------------------------------------------
// the document
// ---------------------------------------------------------------------

/// Identity of the run a snapshot belongs to. Recovery refuses to resume
/// a state directory under a different scenario — restoring an H-LLC
/// controller over an M-Both machine would not crash, it would silently
/// produce garbage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotMeta {
    /// Workload mix label (e.g. `"M-Both"`).
    pub mix: String,
    /// The app count the live runtime configuration was built for (the
    /// boot count, updated by policy switches; admissions and removals
    /// keep the standing configuration).
    pub n_apps: u64,
    /// Partitioning policy label (e.g. `"CoPart"`).
    pub policy: String,
    /// Scenario seed.
    pub seed: u64,
    /// Fault plan spec string (empty = no faults).
    pub faults: String,
    /// Control epochs the daemon had completed (excludes profiling).
    pub daemon_epochs: u64,
}

/// One complete, self-contained snapshot of a running consolidation: the
/// scenario identity, the controller, the backend, and the metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotDoc {
    /// Which run this is.
    pub meta: SnapshotMeta,
    /// The controller's state.
    pub runtime: RuntimeSnapshot,
    /// The backend's state.
    pub backend: BackendSnapshot,
    /// Cumulative counters and gauges (histograms are a documented
    /// recovery invariant: they measure wall-clock latency and are not
    /// restored).
    pub metrics: MetricsFrozen,
}

impl SnapshotDoc {
    /// The epoch the snapshot was captured at.
    pub fn epoch(&self) -> u64 {
        self.runtime.epoch
    }

    /// Serialises the document to a JSON value.
    pub fn encode(&self) -> Json {
        obj(vec![
            (
                "meta",
                obj(vec![
                    ("mix", Json::Str(self.meta.mix.clone())),
                    ("n_apps", Json::Num(self.meta.n_apps as f64)),
                    ("policy", Json::Str(self.meta.policy.clone())),
                    ("seed", hex_u64(self.meta.seed)),
                    ("faults", Json::Str(self.meta.faults.clone())),
                    ("daemon_epochs", Json::Num(self.meta.daemon_epochs as f64)),
                ]),
            ),
            ("runtime", enc_runtime(&self.runtime)),
            ("backend", enc_backend(&self.backend)),
            ("metrics", self.metrics.encode()),
        ])
    }

    /// Deserialises a document.
    ///
    /// # Errors
    ///
    /// [`PersistError::Schema`] when a field is missing or ill-typed.
    pub fn decode(j: &Json) -> Result<SnapshotDoc, PersistError> {
        let meta = req(j, "meta")?;
        Ok(SnapshotDoc {
            meta: SnapshotMeta {
                mix: dec_str(meta, "mix")?.to_string(),
                n_apps: dec_u64(meta, "n_apps")?,
                policy: dec_str(meta, "policy")?.to_string(),
                seed: dec_u64_compat(meta, "seed")?,
                faults: dec_str(meta, "faults")?.to_string(),
                daemon_epochs: dec_u64(meta, "daemon_epochs")?,
            },
            runtime: dec_runtime(req(j, "runtime")?)?,
            backend: dec_backend(req(j, "backend")?)?,
            metrics: MetricsFrozen::decode(req(j, "metrics")?)?,
        })
    }
}
