//! Monotonicity of the performance surfaces (the shape behind Figures
//! 1–3): giving an application strictly more of a resource must never
//! meaningfully hurt it, and the heatmaps must slope the right way for
//! each sensitivity class.

use copart_sim::{MachineConfig, MbaLevel};
use copart_workloads::{measure, Benchmark};

fn cfg() -> MachineConfig {
    MachineConfig::xeon_gold_6130()
}

/// Sampling tolerance: the simulator's per-window sampling introduces a
/// few percent of noise, so "monotone" means "never drops by more than
/// this fraction when resources grow".
const TOLERANCE: f64 = 0.05;

#[test]
fn ips_is_monotone_in_ways_for_every_benchmark() {
    let cfg = cfg();
    for b in Benchmark::all() {
        let spec = b.spec();
        let mut prev = 0.0f64;
        for ways in [1u32, 3, 5, 8, 11] {
            let ips = measure::measure_ips(&cfg, &spec, ways, MbaLevel::MAX);
            assert!(
                ips >= prev * (1.0 - TOLERANCE),
                "{}: IPS fell from {prev:.3e} to {ips:.3e} when ways grew to {ways}",
                b.table2().short
            );
            prev = prev.max(ips);
        }
    }
}

#[test]
fn ips_is_monotone_in_mba_for_every_benchmark() {
    let cfg = cfg();
    for b in Benchmark::all() {
        let spec = b.spec();
        let mut prev = 0.0f64;
        for level in [10u8, 30, 50, 80, 100] {
            let ips = measure::measure_ips(&cfg, &spec, cfg.llc_ways, MbaLevel::new(level));
            assert!(
                ips >= prev * (1.0 - TOLERANCE),
                "{}: IPS fell from {prev:.3e} to {ips:.3e} when MBA grew to {level}%",
                b.table2().short
            );
            prev = prev.max(ips);
        }
    }
}

#[test]
fn heatmap_gradients_match_categories() {
    // The dominant gradient of each benchmark's (ways × MBA) surface must
    // point along its sensitivity class: LLC-sensitive benchmarks gain
    // far more from ways than from bandwidth, and vice versa.
    let cfg = cfg();
    let gain = |b: Benchmark| {
        let spec = b.spec();
        let base = measure::measure_ips(&cfg, &spec, 2, MbaLevel::new(20));
        let more_ways = measure::measure_ips(&cfg, &spec, 8, MbaLevel::new(20));
        let more_bw = measure::measure_ips(&cfg, &spec, 2, MbaLevel::new(80));
        (more_ways / base, more_bw / base)
    };

    for b in [Benchmark::WaterNsquared, Benchmark::WaterSpatial] {
        let (ways_gain, bw_gain) = gain(b);
        assert!(
            ways_gain > bw_gain,
            "{}: ways gain {ways_gain:.3} should dominate bw gain {bw_gain:.3}",
            b.table2().short
        );
    }
    for b in [Benchmark::OceanCp, Benchmark::Ft] {
        let (ways_gain, bw_gain) = gain(b);
        assert!(
            bw_gain > ways_gain,
            "{}: bw gain {bw_gain:.3} should dominate ways gain {ways_gain:.3}",
            b.table2().short
        );
    }
    // LM benchmarks benefit noticeably from both.
    for b in [Benchmark::Sp, Benchmark::OceanNcp] {
        let (ways_gain, bw_gain) = gain(b);
        assert!(
            ways_gain > 1.03 && bw_gain > 1.03,
            "{}: both gains should be real (ways {ways_gain:.3}, bw {bw_gain:.3})",
            b.table2().short
        );
    }
}
