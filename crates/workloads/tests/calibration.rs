//! Calibration pinning: the benchmark models must reproduce the paper's
//! Table 2 counter signatures (within model tolerance), the §3.3
//! categories, and the §4.1 anchor points. These tests are what keeps the
//! reproduction honest — any simulator change that bends a curve out of
//! shape fails here.

use copart_sim::{MachineConfig, MbaLevel};
use copart_workloads::{measure, Benchmark};

fn cfg() -> MachineConfig {
    MachineConfig::xeon_gold_6130()
}

/// Order-of-magnitude agreement for counter rates: the models are
/// synthetic, so we require the measured rate to be within 3× of the
/// paper's value (and exactly capture which benchmarks are heavy vs
/// negligible).
fn within_factor(measured: f64, reference: f64, factor: f64) -> bool {
    if reference == 0.0 {
        return measured == 0.0;
    }
    measured / reference <= factor && reference / measured <= factor
}

#[test]
fn table2_counter_signatures() {
    let cfg = cfg();
    let mut failures = Vec::new();
    for b in Benchmark::all() {
        let row = b.table2();
        let (_, rates) = measure::measure_full(&cfg, &b.spec());
        if !within_factor(rates.llc_accesses_per_sec, row.llc_accesses_per_sec, 3.0) {
            failures.push(format!(
                "{}: accesses/s {:.2e} vs paper {:.2e}",
                row.short, rates.llc_accesses_per_sec, row.llc_accesses_per_sec
            ));
        }
        // Miss rates depend on the full cache model; allow a wider band.
        // Two exemptions: FMM, whose published rates are physically
        // inconsistent with its published sensitivity (see DESIGN.md) and
        // is calibrated for behaviour instead; and SW, whose 798 misses/s
        // are below one sampled access per simulation window (we bound it
        // from above instead).
        if b == Benchmark::Swaptions {
            assert!(
                rates.llc_misses_per_sec < 1.0e4,
                "SW misses/s {:.2e} should be negligible",
                rates.llc_misses_per_sec
            );
            continue;
        }
        if b != Benchmark::Fmm
            && !within_factor(rates.llc_misses_per_sec, row.llc_misses_per_sec, 5.0)
        {
            failures.push(format!(
                "{}: misses/s {:.2e} vs paper {:.2e}",
                row.short, rates.llc_misses_per_sec, row.llc_misses_per_sec
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "Table 2 mismatches:\n{}",
        failures.join("\n")
    );
}

#[test]
fn categories_match_the_paper() {
    let cfg = cfg();
    let mut failures = Vec::new();
    for b in Benchmark::all() {
        let measured = measure::classify(&cfg, &b.spec());
        let expected = b.category();
        if measured != expected {
            let (llc, bw) = measure::degradations(&cfg, &b.spec());
            failures.push(format!(
                "{}: measured {measured} (llc {llc:.3}, bw {bw:.3}) vs paper {expected}",
                b.table2().short
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "category mismatches:\n{}",
        failures.join("\n")
    );
}

#[test]
fn llc_sensitive_way_requirements_match_section_4_1() {
    // "WN, WS, and RT require 4, 3, and 2 LLC ways to achieve 90% of the
    // performance that can be achieved with the full LLC capacity."
    let cfg = cfg();
    let anchors = [
        (Benchmark::WaterNsquared, 4),
        (Benchmark::WaterSpatial, 3),
        (Benchmark::Raytrace, 2),
    ];
    for (b, expected) in anchors {
        let ways = measure::required_ways(&cfg, &b.spec(), 0.9).unwrap_or(cfg.llc_ways + 1);
        assert!(
            (ways as i64 - expected).abs() <= 1,
            "{}: needs {ways} ways for 90%, paper says {expected}",
            b.table2().short
        );
    }
}

#[test]
fn bw_sensitive_mba_requirements_match_section_4_1() {
    // "OC, CG, and FT require MBA levels of 30, 20, and 30 to achieve 90%
    // of the performance that can be achieved at the 100% MBA level."
    let cfg = cfg();
    let anchors = [
        (Benchmark::OceanCp, 30u8),
        (Benchmark::Cg, 20),
        (Benchmark::Ft, 30),
    ];
    for (b, expected) in anchors {
        let level = measure::required_mba(&cfg, &b.spec(), 0.9)
            .map(|l| l.percent())
            .unwrap_or(110);
        assert!(
            (i16::from(level) - i16::from(expected)).abs() <= 10,
            "{}: needs MBA {level}% for 90%, paper says {expected}%",
            b.table2().short
        );
    }
}

#[test]
fn lm_benchmarks_have_equivalent_system_states() {
    // §4.1: "SP achieves similar performance when it is allocated 8 LLC
    // ways and the 20% MBA level and 3 LLC ways and the 40% MBA level."
    let cfg = cfg();
    let spec = Benchmark::Sp.spec();
    let a = measure::measure_ips(&cfg, &spec, 8, MbaLevel::new(20));
    let b = measure::measure_ips(&cfg, &spec, 3, MbaLevel::new(40));
    let ratio = a.max(b) / a.min(b);
    assert!(
        ratio < 1.35,
        "SP: states (8 ways, MBA 20) and (3 ways, MBA 40) differ by {ratio:.2}×"
    );
}

#[test]
fn insensitive_benchmarks_barely_move() {
    let cfg = cfg();
    for b in [Benchmark::Swaptions, Benchmark::Ep] {
        let (llc, bw) = measure::degradations(&cfg, &b.spec());
        assert!(
            llc < 0.01 && bw < 0.01,
            "{}: degradations llc {llc:.4}, bw {bw:.4} exceed the 1% insensitivity bound",
            b.table2().short
        );
    }
}

#[test]
fn llc_sensitive_benchmarks_ignore_mba() {
    // §4.1 finding 1: LLC-sensitive performance is relatively insensitive
    // to allocated memory bandwidth, even at small MBA levels.
    let cfg = cfg();
    for b in [
        Benchmark::WaterNsquared,
        Benchmark::WaterSpatial,
        Benchmark::Raytrace,
    ] {
        let full = measure::measure_ips(&cfg, &b.spec(), cfg.llc_ways, MbaLevel::MAX);
        let throttled = measure::measure_ips(&cfg, &b.spec(), cfg.llc_ways, MbaLevel::MIN);
        let deg = (full - throttled) / full;
        assert!(
            deg < 0.15,
            "{}: {deg:.3} degradation from MBA alone contradicts its category",
            b.table2().short
        );
    }
}

#[test]
fn bw_sensitive_benchmarks_ignore_llc() {
    // §4.1 finding: BW-sensitive apps show little sensitivity to LLC
    // capacity even when bandwidth is scarce.
    let cfg = cfg();
    for b in [Benchmark::OceanCp, Benchmark::Cg, Benchmark::Ft] {
        let full = measure::measure_ips(&cfg, &b.spec(), cfg.llc_ways, MbaLevel::MAX);
        let one_way = measure::measure_ips(&cfg, &b.spec(), 1, MbaLevel::MAX);
        let deg = (full - one_way) / full;
        assert!(
            deg < 0.15,
            "{}: {deg:.3} degradation from LLC alone contradicts its category",
            b.table2().short
        );
    }
}

#[test]
fn stream_is_the_traffic_ceiling() {
    // Every benchmark's miss rate must stay below STREAM's at full
    // resources — STREAM is the paper's empirical traffic maximum.
    let cfg = cfg();
    let stream = copart_workloads::stream::StreamReference::compute(&cfg, 4);
    let ceiling = stream.misses_per_sec(MbaLevel::MAX);
    for b in Benchmark::all() {
        let (_, rates) = measure::measure_full(&cfg, &b.spec());
        assert!(
            rates.llc_misses_per_sec < ceiling,
            "{} out-streams STREAM: {:.2e} vs {ceiling:.2e}",
            b.table2().short,
            rates.llc_misses_per_sec
        );
    }
}
