//! The head-to-head scenario registry for `copart compare`.
//!
//! A [`CompareScenario`] names one consolidated workload the engine
//! comparison runs every registered policy over. The registry spans the
//! paper's steady-state mixes and three stress shapes built from the
//! §6.3 case-study models:
//!
//! * **diurnal-lc** — the LC application sized for the midday peak of
//!   [`LoadTrace::diurnal`] (high-tier reservation) consolidated with
//!   the two Spark batch models,
//! * **flash-crowd-lc** — the LC application under the saturating surge
//!   of [`LoadTrace::flash_crowd`]: the reservation is maxed out and the
//!   batch jobs compete for what is left,
//! * **bully** — one [`antagonist_spec`] cache-and-bandwidth bully
//!   consolidated with three sensitive victims.
//!
//! Scenario construction is a pure function of the machine
//! configuration — no RNG, no measurement — so the registry is the same
//! in every process and at every `--jobs` setting, which is what lets
//! the compare harness demand byte-identical output across worker
//! counts.

use copart_sim::trace::AccessPattern;
use copart_sim::{AppSpec, MachineConfig};

use crate::casestudy::{kmeans_spec, memcached_spec, wordcount_spec, LcReservation, LoadTrace};
use crate::{Benchmark, MixKind, WorkloadMix};

const KB: u64 = 1024;
const MB: u64 = 1024 * 1024;

/// An antagonist ("bully") profile: a memory hog that streams a huge
/// footprint at maximal concurrency and writes a third of it back. It
/// pollutes every cache way it can reach and saturates the memory
/// controller, yet gains almost nothing from either — the worst
/// neighbour a fairness policy has to contain.
pub fn antagonist_spec(cores: u32) -> AppSpec {
    AppSpec {
        name: "antagonist".into(),
        cores,
        ipc_peak: 0.8,
        apki: 45.0,
        write_fraction: 0.35,
        mlp: 10.0,
        phases: vec![
            (0.7, AccessPattern::Stream { bytes: 768 * MB }),
            (0.3, AccessPattern::UniformRandom { bytes: 256 * MB }),
        ],
    }
}

/// A cache-friendly victim for the bully scenario: a small hot working
/// set that collapses when the antagonist floods the LLC.
fn victim_spec(name: &str, cores: u32) -> AppSpec {
    AppSpec {
        name: name.into(),
        cores,
        ipc_peak: 1.4,
        apki: 12.0,
        write_fraction: 0.1,
        mlp: 2.0,
        phases: vec![
            (
                0.8,
                AccessPattern::WorkingSetLoop {
                    bytes: 6 * MB,
                    stride: 64,
                },
            ),
            (
                0.2,
                AccessPattern::WorkingSetLoop {
                    bytes: 256 * KB,
                    stride: 64,
                },
            ),
        ],
    }
}

/// One named workload of the head-to-head comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CompareScenario {
    /// One of the paper's §6.1 steady-state mixes (4 applications).
    PaperMix(MixKind),
    /// The LC application at its diurnal midday peak plus the Spark
    /// batch jobs.
    DiurnalLc,
    /// The LC application under the saturating flash-crowd surge plus
    /// the Spark batch jobs.
    FlashCrowdLc,
    /// One antagonist consolidated with three sensitive victims.
    Bully,
}

impl CompareScenario {
    /// The full registry, in report order: two paper anchors bracketing
    /// the sensitivity range, then the three stress shapes.
    pub fn all() -> Vec<CompareScenario> {
        vec![
            CompareScenario::PaperMix(MixKind::HighBoth),
            CompareScenario::PaperMix(MixKind::ModerateLlc),
            CompareScenario::DiurnalLc,
            CompareScenario::FlashCrowdLc,
            CompareScenario::Bully,
        ]
    }

    /// The scenario's stable wire name (JSONL and artifact key).
    pub fn name(self) -> &'static str {
        match self {
            CompareScenario::PaperMix(MixKind::HighLlc) => "h-llc",
            CompareScenario::PaperMix(MixKind::HighBw) => "h-bw",
            CompareScenario::PaperMix(MixKind::HighBoth) => "h-both",
            CompareScenario::PaperMix(MixKind::ModerateLlc) => "m-llc",
            CompareScenario::PaperMix(MixKind::ModerateBw) => "m-bw",
            CompareScenario::PaperMix(MixKind::ModerateBoth) => "m-both",
            CompareScenario::PaperMix(MixKind::Insensitive) => "is",
            CompareScenario::DiurnalLc => "diurnal-lc",
            CompareScenario::FlashCrowdLc => "flash-crowd-lc",
            CompareScenario::Bully => "bully",
        }
    }

    /// The consolidated application specs on the given machine.
    pub fn specs(self, machine: &MachineConfig) -> Vec<AppSpec> {
        let quarter = (machine.n_cores / 4).max(1);
        match self {
            CompareScenario::PaperMix(kind) => WorkloadMix::build(kind, 4, machine.n_cores).specs(),
            CompareScenario::DiurnalLc => {
                // The outer manager sizes the LC app for the midday
                // peak; the batch jobs split the remaining cores.
                let r = LcReservation::for_load(LoadTrace::diurnal().peak());
                let batch = ((machine.n_cores - r.lc_cores) / 2).max(1);
                vec![
                    memcached_spec(r.lc_cores),
                    wordcount_spec(batch),
                    kmeans_spec(batch),
                ]
            }
            CompareScenario::FlashCrowdLc => {
                // The surge saturates the LC model at any reservation;
                // the manager still grants the high tier, and a fourth
                // tenant (the insensitive EP) rides along as ballast.
                let r = LcReservation::for_load(LoadTrace::flash_crowd().peak());
                let batch = ((machine.n_cores - r.lc_cores) / 3).max(1);
                let mut ep = Benchmark::Ep.spec_with_cores(batch);
                ep.name = "EP-ballast".into();
                vec![
                    memcached_spec(r.lc_cores),
                    wordcount_spec(batch),
                    kmeans_spec(batch),
                    ep,
                ]
            }
            CompareScenario::Bully => vec![
                antagonist_spec(quarter),
                victim_spec("victim-a", quarter),
                victim_spec("victim-b", quarter),
                victim_spec("victim-c", quarter),
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_stable() {
        let names: Vec<&str> = CompareScenario::all().iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            vec!["h-both", "m-llc", "diurnal-lc", "flash-crowd-lc", "bully"]
        );
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), names.len(), "duplicate scenario names");
    }

    #[test]
    fn every_scenario_fits_the_paper_testbed() {
        let machine = MachineConfig::xeon_gold_6130();
        for s in CompareScenario::all() {
            let specs = s.specs(&machine);
            assert!(
                (3..=4).contains(&specs.len()),
                "{}: {} apps",
                s.name(),
                specs.len()
            );
            let cores: u32 = specs.iter().map(|a| a.cores).sum();
            assert!(
                cores <= machine.n_cores,
                "{}: {cores} cores over {}",
                s.name(),
                machine.n_cores
            );
            let mut names: Vec<&str> = specs.iter().map(|a| a.name.as_str()).collect();
            names.sort_unstable();
            names.dedup();
            assert_eq!(names.len(), specs.len(), "{}: duplicate names", s.name());
            for a in &specs {
                assert!(a.cores >= 1);
                let w: f64 = a.phases.iter().map(|(w, _)| w).sum();
                assert!((w - 1.0).abs() < 1e-9, "{}: ragged phases", a.name);
            }
        }
    }

    #[test]
    fn scenario_construction_is_deterministic() {
        let machine = MachineConfig::xeon_gold_6130();
        for s in CompareScenario::all() {
            assert_eq!(s.specs(&machine), s.specs(&machine));
        }
    }

    #[test]
    fn the_antagonist_is_a_bandwidth_hog() {
        let a = antagonist_spec(4);
        assert!(a.mlp >= 8.0);
        assert!(a.apki >= 40.0);
        // Dominantly streaming: the bully's footprint dwarfs any cache.
        let streamed: f64 = a
            .phases
            .iter()
            .filter(|(_, p)| matches!(p, AccessPattern::Stream { .. }))
            .map(|(w, _)| w)
            .sum();
        assert!(streamed >= 0.5);
    }

    #[test]
    fn lc_scenarios_track_their_load_curves() {
        let machine = MachineConfig::xeon_gold_6130();
        // Both curves peak in the high reservation tier, so the LC app
        // gets the 8-core grant on the 16-core testbed.
        for s in [CompareScenario::DiurnalLc, CompareScenario::FlashCrowdLc] {
            let lc = &s.specs(&machine)[0];
            assert_eq!(lc.name, "memcached");
            assert_eq!(lc.cores, 8);
        }
    }
}
