//! Workload-mix construction (§6.1 / §6.2 of the paper).
//!
//! The evaluation consolidates benchmarks into seven mix kinds:
//! highly/moderately LLC-sensitive, bandwidth-sensitive, and
//! both-sensitive, plus an all-insensitive mix. For application counts
//! other than four the paper states the mixes are "generated similarly";
//! this module applies the natural generalization: a *highly* sensitive
//! mix keeps exactly one insensitive member and fills the rest with the
//! category (cycling through its three benchmarks when more instances are
//! needed than exist), a *moderately* sensitive mix fills half the slots
//! with the category and the rest with insensitive benchmarks.

use copart_sim::AppSpec;

use crate::{Benchmark, Category};

/// The seven evaluated mix kinds (§6.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MixKind {
    /// Highly LLC-sensitive: all-but-one LLC-sensitive + one insensitive.
    HighLlc,
    /// Highly memory bandwidth-sensitive.
    HighBw,
    /// Highly LLC- and memory bandwidth-sensitive.
    HighBoth,
    /// Moderately LLC-sensitive: half LLC-sensitive, half insensitive.
    ModerateLlc,
    /// Moderately memory bandwidth-sensitive.
    ModerateBw,
    /// Moderately LLC- and memory bandwidth-sensitive.
    ModerateBoth,
    /// All insensitive.
    Insensitive,
}

impl MixKind {
    /// All seven kinds, in Figure 12 order.
    pub fn all() -> [MixKind; 7] {
        use MixKind::*;
        [
            HighLlc,
            HighBw,
            HighBoth,
            ModerateLlc,
            ModerateBw,
            ModerateBoth,
            Insensitive,
        ]
    }

    /// The label the paper uses for this mix.
    pub fn label(self) -> &'static str {
        match self {
            MixKind::HighLlc => "H-LLC",
            MixKind::HighBw => "H-BW",
            MixKind::HighBoth => "H-Both",
            MixKind::ModerateLlc => "M-LLC",
            MixKind::ModerateBw => "M-BW",
            MixKind::ModerateBoth => "M-Both",
            MixKind::Insensitive => "IS",
        }
    }

    fn sensitive_category(self) -> Option<Category> {
        match self {
            MixKind::HighLlc | MixKind::ModerateLlc => Some(Category::LlcSensitive),
            MixKind::HighBw | MixKind::ModerateBw => Some(Category::BwSensitive),
            MixKind::HighBoth | MixKind::ModerateBoth => Some(Category::Both),
            MixKind::Insensitive => None,
        }
    }

    fn sensitive_count(self, n_apps: usize) -> usize {
        match self {
            MixKind::HighLlc | MixKind::HighBw | MixKind::HighBoth => n_apps - 1,
            MixKind::ModerateLlc | MixKind::ModerateBw | MixKind::ModerateBoth => n_apps / 2,
            MixKind::Insensitive => 0,
        }
    }
}

/// A concrete consolidated workload: benchmarks plus a per-application
/// core allocation.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadMix {
    /// Which mix family this is.
    pub kind: MixKind,
    /// The member benchmarks, in slot order.
    pub members: Vec<Benchmark>,
    /// Dedicated cores per application.
    pub cores_per_app: u32,
}

impl WorkloadMix {
    /// Builds the mix of the given kind with `n_apps` applications on a
    /// machine with `total_cores` cores.
    ///
    /// Each application receives `min(4, total_cores / n_apps)` cores — 4
    /// threads per benchmark as in the paper, reduced when more than four
    /// applications share the 16-core machine.
    ///
    /// # Panics
    ///
    /// Panics when `n_apps` is zero or exceeds `total_cores`; evaluation
    /// sweeps use 3–6 applications.
    pub fn build(kind: MixKind, n_apps: usize, total_cores: u32) -> WorkloadMix {
        assert!(n_apps >= 1, "a mix needs at least one application");
        assert!(
            n_apps as u32 <= total_cores,
            "cannot give {n_apps} applications dedicated cores out of {total_cores}"
        );
        let llc = [
            Benchmark::WaterNsquared,
            Benchmark::WaterSpatial,
            Benchmark::Raytrace,
        ];
        let bw = [Benchmark::OceanCp, Benchmark::Cg, Benchmark::Ft];
        let both = [Benchmark::Sp, Benchmark::OceanNcp, Benchmark::Fmm];
        let insensitive = [Benchmark::Swaptions, Benchmark::Ep];

        let n_sensitive = kind.sensitive_count(n_apps);
        let mut members = Vec::with_capacity(n_apps);
        if let Some(cat) = kind.sensitive_category() {
            let pool: &[Benchmark] = match cat {
                Category::LlcSensitive => &llc,
                Category::BwSensitive => &bw,
                Category::Both => &both,
                Category::Insensitive => unreachable!("sensitive category"),
            };
            for i in 0..n_sensitive {
                members.push(pool[i % pool.len()]);
            }
        }
        let mut k = 0;
        while members.len() < n_apps {
            members.push(insensitive[k % insensitive.len()]);
            k += 1;
        }
        let cores_per_app = (total_cores / n_apps as u32).min(4);
        WorkloadMix {
            kind,
            members,
            cores_per_app,
        }
    }

    /// The default 4-application mixes of §6.1 on the 16-core testbed.
    pub fn paper_default(kind: MixKind) -> WorkloadMix {
        WorkloadMix::build(kind, 4, 16)
    }

    /// Application specs with unique names (duplicated benchmarks get an
    /// instance suffix).
    pub fn specs(&self) -> Vec<AppSpec> {
        let mut seen: std::collections::HashMap<Benchmark, u32> = std::collections::HashMap::new();
        self.members
            .iter()
            .map(|&b| {
                let mut spec = b.spec_with_cores(self.cores_per_app);
                let n = seen.entry(b).or_insert(0);
                if *n > 0 {
                    spec.name = format!("{}#{}", spec.name, *n);
                }
                *n += 1;
                spec
            })
            .collect()
    }

    /// Number of applications in the mix.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the mix is empty (never true for built mixes).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_compositions() {
        let m = WorkloadMix::paper_default(MixKind::HighLlc);
        assert_eq!(
            m.members,
            vec![
                Benchmark::WaterNsquared,
                Benchmark::WaterSpatial,
                Benchmark::Raytrace,
                Benchmark::Swaptions
            ]
        );
        assert_eq!(m.cores_per_app, 4);

        let m = WorkloadMix::paper_default(MixKind::ModerateBw);
        let cats: Vec<Category> = m.members.iter().map(|b| b.category()).collect();
        assert_eq!(
            cats.iter().filter(|c| **c == Category::BwSensitive).count(),
            2
        );
        assert_eq!(
            cats.iter().filter(|c| **c == Category::Insensitive).count(),
            2
        );

        let m = WorkloadMix::paper_default(MixKind::Insensitive);
        assert!(m
            .members
            .iter()
            .all(|b| b.category() == Category::Insensitive));
    }

    #[test]
    fn swept_counts_keep_the_family_shape() {
        for n in 3..=6 {
            let m = WorkloadMix::build(MixKind::HighBoth, n, 16);
            assert_eq!(m.len(), n);
            let sensitive = m
                .members
                .iter()
                .filter(|b| b.category() == Category::Both)
                .count();
            assert_eq!(sensitive, n - 1);
            assert!(m.cores_per_app * n as u32 <= 16);
        }
    }

    #[test]
    fn six_apps_reuse_benchmarks_with_unique_names() {
        let m = WorkloadMix::build(MixKind::HighLlc, 6, 16);
        let specs = m.specs();
        let mut names: Vec<&str> = specs.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate app names");
        assert_eq!(m.cores_per_app, 2);
    }

    #[test]
    fn core_cap_at_four() {
        let m = WorkloadMix::build(MixKind::Insensitive, 3, 16);
        assert_eq!(m.cores_per_app, 4);
    }

    #[test]
    #[should_panic(expected = "dedicated cores")]
    fn too_many_apps_panics() {
        let _ = WorkloadMix::build(MixKind::Insensitive, 20, 16);
    }

    #[test]
    fn labels_are_paper_labels() {
        let labels: Vec<&str> = MixKind::all().iter().map(|k| k.label()).collect();
        assert_eq!(
            labels,
            vec!["H-LLC", "H-BW", "H-Both", "M-LLC", "M-BW", "M-Both", "IS"]
        );
    }
}
