//! Calibrated synthetic workload models for the CoPart reproduction.
//!
//! The paper evaluates CoPart with 11 multithreaded benchmarks from
//! PARSEC, SPLASH-2, and NPB (Table 2), the STREAM bandwidth probe, and a
//! dynamic-consolidation case study (memcached + Spark batch jobs). None
//! of those binaries run inside the simulator — instead each benchmark is
//! modelled as a [`copart_sim::AppSpec`]: an access-phase mixture plus
//! execution parameters, calibrated so that the model reproduces
//!
//! * the benchmark's Table 2 counter signature (LLC accesses and misses
//!   per second at full resources, within model tolerance),
//! * its §3.3 sensitivity category (LLC-sensitive / bandwidth-sensitive /
//!   both / insensitive, under the paper's 15 % / 1 % thresholds), and
//! * the §4.1 anchor points: WN, WS, and RT reach 90 % of full performance
//!   with 4, 3, and 2 ways; OC, CG, and FT reach 90 % at MBA levels 30,
//!   20, and 30.
//!
//! The calibration is pinned by tests in this crate, so any change to the
//! simulator that breaks an anchor fails loudly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod benchmarks;
pub mod casestudy;
pub mod category;
pub mod fleet;
pub mod measure;
pub mod mixes;
pub mod scenarios;
pub mod stream;

pub use benchmarks::Benchmark;
pub use category::Category;
pub use mixes::{MixKind, WorkloadMix};
pub use scenarios::{antagonist_spec, CompareScenario};
