//! The paper's four sensitivity categories (§3.3).

use std::fmt;

/// How a benchmark responds to LLC capacity and memory bandwidth.
///
/// The paper classifies a benchmark (§3.3) by running it alone with four
/// threads and measuring the performance degradation when
///
/// * the allocated LLC shrinks from 11 ways to 1 (at MBA 100 %), and
/// * the MBA level drops from 100 % to 10 % (with 11 ways):
///
/// ≥ 15 % on the first test ⇒ LLC-sensitive; ≥ 15 % on the second ⇒
/// bandwidth-sensitive; both ⇒ both; < 1 % on both ⇒ insensitive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// Performance depends primarily on allocated LLC ways.
    LlcSensitive,
    /// Performance depends primarily on allocated memory bandwidth.
    BwSensitive,
    /// Performance depends on both resources ("LM" in the paper).
    Both,
    /// Performance is insensitive to both resources.
    Insensitive,
}

impl Category {
    /// Applies the paper's thresholds to measured degradations (fractions
    /// in `[0, 1]`).
    ///
    /// Benchmarks falling between the 1 % and 15 % thresholds (the paper
    /// does not evaluate any) are mapped to the nearest dominant category:
    /// whichever degradation is larger, or `Insensitive` when both are
    /// below 1 %.
    pub fn classify(llc_degradation: f64, bw_degradation: f64) -> Category {
        let llc = llc_degradation >= 0.15;
        let bw = bw_degradation >= 0.15;
        match (llc, bw) {
            (true, true) => Category::Both,
            (true, false) => Category::LlcSensitive,
            (false, true) => Category::BwSensitive,
            (false, false) => {
                if llc_degradation < 0.01 && bw_degradation < 0.01 {
                    Category::Insensitive
                } else if llc_degradation >= bw_degradation {
                    Category::LlcSensitive
                } else {
                    Category::BwSensitive
                }
            }
        }
    }

    /// Whether the category implies LLC sensitivity.
    pub fn llc_sensitive(self) -> bool {
        matches!(self, Category::LlcSensitive | Category::Both)
    }

    /// Whether the category implies bandwidth sensitivity.
    pub fn bw_sensitive(self) -> bool {
        matches!(self, Category::BwSensitive | Category::Both)
    }
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Category::LlcSensitive => "LLC-sensitive",
            Category::BwSensitive => "memory bandwidth-sensitive",
            Category::Both => "LLC- & memory BW-sensitive",
            Category::Insensitive => "insensitive",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_thresholds() {
        assert_eq!(Category::classify(0.30, 0.02), Category::LlcSensitive);
        assert_eq!(Category::classify(0.02, 0.30), Category::BwSensitive);
        assert_eq!(Category::classify(0.20, 0.20), Category::Both);
        assert_eq!(Category::classify(0.005, 0.004), Category::Insensitive);
    }

    #[test]
    fn boundary_values() {
        assert_eq!(Category::classify(0.15, 0.0), Category::LlcSensitive);
        assert_eq!(Category::classify(0.1499, 0.0), Category::LlcSensitive);
        assert_eq!(Category::classify(0.0, 0.1499), Category::BwSensitive);
        assert_eq!(Category::classify(0.009, 0.0099), Category::Insensitive);
        assert_eq!(Category::classify(0.012, 0.011), Category::LlcSensitive);
        assert_eq!(Category::classify(0.011, 0.012), Category::BwSensitive);
    }

    #[test]
    fn sensitivity_predicates() {
        assert!(Category::Both.llc_sensitive() && Category::Both.bw_sensitive());
        assert!(Category::LlcSensitive.llc_sensitive());
        assert!(!Category::LlcSensitive.bw_sensitive());
        assert!(!Category::Insensitive.llc_sensitive());
        assert!(!Category::Insensitive.bw_sensitive());
    }
}
