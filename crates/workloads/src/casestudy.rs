//! The §6.3 dynamic-consolidation case study models.
//!
//! The paper collocates memcached (CloudSuite, Twitter dataset) as a
//! latency-critical (LC) workload with two Spark batch jobs (BigDataBench
//! Word Count and Kmeans). An outer Heracles-style server manager sizes
//! the LC reservation from the offered load; CoPart partitions whatever is
//! left across the batch applications. This module provides:
//!
//! * [`memcached_spec`], [`wordcount_spec`], [`kmeans_spec`] — the three
//!   application models,
//! * [`LcModel`] — the queueing approximation converting achieved IPS and
//!   offered load into a 95th-percentile latency (SLO: 1 ms, §6.3),
//! * [`LoadTrace`] — the paper's load timeline (75 krps → 150 krps at
//!   t ≈ 99.4 s → back at t ≈ 299.4 s), and
//! * [`LcReservation`] — the outer manager's load → reservation map.

use copart_sim::trace::AccessPattern;
use copart_sim::AppSpec;

const KB: u64 = 1024;
const MB: u64 = 1024 * 1024;

/// The memcached model: Zipf-distributed key lookups over a dataset much
/// larger than any realistic cache slice, with a hot core that rewards
/// LLC capacity.
pub fn memcached_spec(cores: u32) -> AppSpec {
    AppSpec {
        name: "memcached".into(),
        cores,
        ipc_peak: 1.1,
        apki: 8.0,
        write_fraction: 0.15,
        mlp: 3.0,
        phases: vec![
            (
                0.7,
                AccessPattern::Zipf {
                    bytes: 24 * MB,
                    exponent: 1.05,
                },
            ),
            (0.2, AccessPattern::UniformRandom { bytes: 96 * MB }),
            (
                0.1,
                AccessPattern::WorkingSetLoop {
                    bytes: 512 * KB,
                    stride: 64,
                },
            ),
        ],
    }
}

/// The Spark Word Count model: a streaming text scan feeding a skewed
/// hash aggregation — dominantly bandwidth-hungry.
pub fn wordcount_spec(cores: u32) -> AppSpec {
    AppSpec {
        name: "wordcount".into(),
        cores,
        ipc_peak: 0.9,
        apki: 30.0,
        write_fraction: 0.25,
        mlp: 8.0,
        phases: vec![
            (0.6, AccessPattern::Stream { bytes: 512 * MB }),
            (
                0.4,
                AccessPattern::Zipf {
                    bytes: 24 * MB,
                    exponent: 1.1,
                },
            ),
        ],
    }
}

/// The Spark Kmeans model: repeated sweeps over the point set with a hot
/// centroid block — sensitive to both LLC capacity and bandwidth.
pub fn kmeans_spec(cores: u32) -> AppSpec {
    AppSpec {
        name: "kmeans".into(),
        cores,
        ipc_peak: 1.0,
        apki: 25.0,
        write_fraction: 0.2,
        mlp: 6.0,
        phases: vec![
            (
                0.35,
                AccessPattern::WorkingSetLoop {
                    bytes: 8 * MB,
                    stride: 64,
                },
            ),
            (0.65, AccessPattern::Stream { bytes: 256 * MB }),
        ],
    }
}

/// Queueing approximation for the LC application's tail latency.
///
/// memcached is modelled as an M/M/1-like server whose service rate is the
/// achieved IPS divided by the instruction cost per request; the p95
/// sojourn time of M/M/1 is `-ln(0.05) / (μ - λ) ≈ 3 / (μ - λ)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LcModel {
    /// Instructions executed per request (dominated by hash lookup and
    /// network stack).
    pub instructions_per_request: f64,
    /// Latency reported when the server is saturated (ρ ≥ 1).
    pub saturated_latency_ms: f64,
}

impl Default for LcModel {
    fn default() -> Self {
        LcModel {
            instructions_per_request: 75_000.0,
            saturated_latency_ms: 50.0,
        }
    }
}

impl LcModel {
    /// 95th-percentile latency in milliseconds at the given achieved IPS
    /// and offered load (requests per second).
    pub fn p95_latency_ms(&self, achieved_ips: f64, load_rps: f64) -> f64 {
        let mu = achieved_ips / self.instructions_per_request; // requests/s
        if mu <= load_rps || mu <= 0.0 {
            return self.saturated_latency_ms;
        }
        let p95_s = 3.0 / (mu - load_rps);
        (p95_s * 1e3).min(self.saturated_latency_ms)
    }

    /// Whether the 1 ms SLO of §6.3 is met.
    pub fn slo_met(&self, achieved_ips: f64, load_rps: f64) -> bool {
        self.p95_latency_ms(achieved_ips, load_rps) <= 1.0
    }
}

/// The offered-load timeline of Figure 15.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadTrace {
    /// `(start_second, requests_per_second)` steps, sorted by time.
    pub steps: Vec<(f64, f64)>,
}

impl LoadTrace {
    /// The paper's trace: 75 krps, stepping to 150 krps at t = 99.4 s and
    /// back to 75 krps at t = 299.4 s.
    pub fn paper() -> LoadTrace {
        LoadTrace {
            steps: vec![(0.0, 75_000.0), (99.4, 150_000.0), (299.4, 75_000.0)],
        }
    }

    /// A diurnal load curve: one compressed "day" (600 s of trace time)
    /// with a quiet night, a morning ramp, a midday peak just under the
    /// paper's high-load step, and an evening decline. The peak stays in
    /// [`LcReservation::for_load`]'s high tier while the night floor sits
    /// well inside the low tier, so a run over the whole day exercises
    /// both reservation shapes.
    pub fn diurnal() -> LoadTrace {
        LoadTrace {
            steps: vec![
                (0.0, 30_000.0),    // night
                (100.0, 60_000.0),  // early morning
                (200.0, 110_000.0), // morning ramp crosses the tier boundary
                (300.0, 140_000.0), // midday peak
                (400.0, 95_000.0),  // afternoon
                (500.0, 45_000.0),  // evening
            ],
        }
    }

    /// A flash-crowd spike: steady 75 krps, then a sudden 4× surge at
    /// t = 60 s that decays in steps back to the baseline. The surge peak
    /// (300 krps) exceeds what even the full machine can serve
    /// (μ ≈ 224 krps at 8 cores), so the LC model saturates — the
    /// scenario stresses how a policy treats the batch tenants while the
    /// LC app is drowning.
    pub fn flash_crowd() -> LoadTrace {
        LoadTrace {
            steps: vec![
                (0.0, 75_000.0),
                (60.0, 300_000.0),  // the crowd arrives
                (90.0, 180_000.0),  // first decay
                (150.0, 105_000.0), // tail of the surge
                (300.0, 75_000.0),  // back to baseline
            ],
        }
    }

    /// Peak offered load over the whole trace (0 for an empty trace).
    pub fn peak(&self) -> f64 {
        self.steps.iter().map(|&(_, l)| l).fold(0.0, f64::max)
    }

    /// Offered load at time `t` seconds.
    pub fn load_at(&self, t: f64) -> f64 {
        let mut load = self.steps.first().map_or(0.0, |&(_, l)| l);
        for &(start, l) in &self.steps {
            if t >= start {
                load = l;
            } else {
                break;
            }
        }
        load
    }
}

/// The outer server manager's reservation for the LC workload, in the
/// spirit of Heracles/PerfIso ([15, 24] in the paper): more load ⇒ more
/// cores and more LLC ways for memcached, leaving less for the batch
/// partition that CoPart manages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LcReservation {
    /// Cores dedicated to the LC application.
    pub lc_cores: u32,
    /// LLC ways dedicated to the LC application.
    pub lc_ways: u32,
    /// LLC ways left for the batch partition.
    pub batch_ways: u32,
    /// Highest MBA level the batch applications may be granted (the
    /// manager throttles batch traffic to protect LC tail latency).
    pub batch_mba_cap: u8,
}

impl LcReservation {
    /// Reservation for the given offered load on the 16-core, 11-way
    /// testbed.
    pub fn for_load(load_rps: f64) -> LcReservation {
        if load_rps > 100_000.0 {
            LcReservation {
                lc_cores: 8,
                lc_ways: 6,
                batch_ways: 5,
                batch_mba_cap: 40,
            }
        } else {
            LcReservation {
                lc_cores: 4,
                lc_ways: 3,
                batch_ways: 8,
                batch_mba_cap: 100,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_trace_matches_figure_15() {
        let t = LoadTrace::paper();
        assert_eq!(t.load_at(0.0), 75_000.0);
        assert_eq!(t.load_at(99.0), 75_000.0);
        assert_eq!(t.load_at(99.4), 150_000.0);
        assert_eq!(t.load_at(200.0), 150_000.0);
        assert_eq!(t.load_at(299.4), 75_000.0);
        assert_eq!(t.load_at(400.0), 75_000.0);
    }

    #[test]
    fn latency_model_behaves_like_a_queue() {
        let m = LcModel::default();
        // 8 cores at ~1 IPC on 2.1 GHz ⇒ μ ≈ 153 krps.
        let ips = 16.8e9;
        let light = m.p95_latency_ms(ips, 75_000.0);
        let heavy = m.p95_latency_ms(ips, 140_000.0);
        assert!(light < heavy);
        assert!(m.slo_met(ips, 75_000.0));
        // Saturation clamps to the ceiling (μ = ips / 75k ≈ 224 krps).
        assert_eq!(m.p95_latency_ms(ips, 250_000.0), 50.0);
        assert_eq!(m.p95_latency_ms(0.0, 10.0), 50.0);
    }

    #[test]
    fn slo_needs_headroom() {
        let m = LcModel::default();
        // μ = 100 krps, λ = 75 krps ⇒ p95 = 3/25k s = 0.12 ms: fine.
        assert!(m.slo_met(100_000.0 * 75_000.0, 75_000.0));
        // μ = 76 krps, λ = 75 krps ⇒ p95 = 3 ms: SLO violated.
        assert!(!m.slo_met(76_000.0 * 75_000.0, 75_000.0));
    }

    #[test]
    fn reservation_scales_with_load() {
        let low = LcReservation::for_load(75_000.0);
        let high = LcReservation::for_load(150_000.0);
        assert!(high.lc_cores > low.lc_cores);
        assert!(high.lc_ways > low.lc_ways);
        assert!(high.batch_ways < low.batch_ways);
        assert!(high.batch_mba_cap < low.batch_mba_cap);
        // Ways must cover the 11-way LLC exactly or less.
        assert!(low.lc_ways + low.batch_ways <= 11);
        assert!(high.lc_ways + high.batch_ways <= 11);
    }

    #[test]
    fn specs_are_well_formed() {
        for spec in [memcached_spec(4), wordcount_spec(4), kmeans_spec(4)] {
            assert!(spec.ipc_peak > 0.0);
            let w: f64 = spec.phases.iter().map(|(w, _)| w).sum();
            assert!((w - 1.0).abs() < 1e-9);
        }
    }
}

#[cfg(test)]
mod reservation_tests {
    use super::*;

    #[test]
    fn reservation_boundary_is_at_100_krps() {
        assert_eq!(
            LcReservation::for_load(100_000.0),
            LcReservation::for_load(75_000.0),
            "100 krps is still the low tier"
        );
        assert_ne!(
            LcReservation::for_load(100_001.0),
            LcReservation::for_load(100_000.0)
        );
    }

    #[test]
    fn load_trace_is_piecewise_constant_between_steps() {
        let t = LoadTrace::paper();
        for (a, b) in [(0.0, 99.39), (99.4, 299.39), (299.4, 1e6)] {
            assert_eq!(t.load_at(a), t.load_at(b), "step [{a}, {b}] is flat");
        }
    }

    #[test]
    fn empty_trace_has_zero_load() {
        let t = LoadTrace { steps: vec![] };
        assert_eq!(t.load_at(10.0), 0.0);
        assert_eq!(t.peak(), 0.0);
    }

    #[test]
    fn diurnal_day_crosses_both_reservation_tiers() {
        let t = LoadTrace::diurnal();
        assert!(t.steps.windows(2).all(|w| w[0].0 < w[1].0), "sorted steps");
        assert_eq!(t.peak(), 140_000.0);
        // Night floor is low-tier, midday peak is high-tier.
        assert_eq!(LcReservation::for_load(t.load_at(0.0)).lc_cores, 4);
        assert_eq!(LcReservation::for_load(t.load_at(350.0)).lc_cores, 8);
        // The curve rises to the peak and falls off it.
        assert!(t.load_at(50.0) < t.load_at(250.0));
        assert!(t.load_at(250.0) < t.load_at(350.0));
        assert!(t.load_at(450.0) < t.load_at(350.0));
    }

    #[test]
    fn flash_crowd_saturates_and_recovers() {
        let t = LoadTrace::flash_crowd();
        assert!(t.steps.windows(2).all(|w| w[0].0 < w[1].0), "sorted steps");
        let m = LcModel::default();
        // 8 cores at ~1 IPC on 2.1 GHz ⇒ μ ≈ 224 krps: the spike drowns
        // the server, the baseline does not.
        let ips = 16.8e9;
        assert_eq!(t.peak(), 300_000.0);
        assert_eq!(m.p95_latency_ms(ips, t.load_at(60.0)), 50.0);
        assert!(m.slo_met(ips, t.load_at(0.0)));
        assert!(m.slo_met(ips, t.load_at(400.0)));
    }
}
