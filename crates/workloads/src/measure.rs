//! Solo-run measurement harness (the §4.1 methodology).
//!
//! The paper characterizes each benchmark by running it alone with four
//! threads under a swept resource allocation and recording IPS and the LLC
//! counters. These helpers reproduce that methodology on the simulator and
//! back both the calibration tests and the Figure 1–3 / Table 2
//! experiment harnesses.

use copart_sim::{AppSpec, CbmMask, ClosId, Machine, MachineConfig, MbaLevel};
use copart_telemetry::Rates;

use crate::Category;

/// Simulation window used for solo measurements (50 ms of virtual time).
pub const WINDOW_NS: u64 = 50_000_000;
/// Warm-up windows discarded before measuring.
pub const WARMUP_WINDOWS: u32 = 30;
/// Windows averaged for the measurement.
pub const MEASURE_WINDOWS: u32 = 20;

/// Runs `spec` alone with `ways` LLC ways (lowest ways first) at the given
/// MBA level, returning the steady-state IPS.
pub fn measure_ips(cfg: &MachineConfig, spec: &AppSpec, ways: u32, mba: MbaLevel) -> f64 {
    measure(cfg, spec, ways, mba).0
}

/// Like [`measure_ips`], but also returns counter-derived rates over the
/// measurement span.
pub fn measure(cfg: &MachineConfig, spec: &AppSpec, ways: u32, mba: MbaLevel) -> (f64, Rates) {
    let mut m = Machine::new(cfg.clone());
    let clos = ClosId(1);
    let mask = CbmMask::contiguous(0, ways, cfg.llc_ways).expect("valid way count");
    m.set_cbm(clos, mask).expect("mask fits machine");
    m.set_mba(clos, mba);
    let app = m.add_app(spec.clone(), clos).expect("machine starts empty");

    for _ in 0..WARMUP_WINDOWS {
        m.tick(WINDOW_NS);
    }
    let start = m.counters(app).expect("app is live");
    let mut ips_sum = 0.0;
    for _ in 0..MEASURE_WINDOWS {
        let reports = m.tick(WINDOW_NS);
        ips_sum += reports[0].ips;
    }
    let end = m.counters(app).expect("app is live");
    let rates = end
        .delta_since(&start)
        .and_then(|d| d.rates())
        .unwrap_or_default();
    (ips_sum / f64::from(MEASURE_WINDOWS), rates)
}

/// IPS with every resource (all ways, MBA 100 %), the paper's
/// `IPS_full` reference (Eq 1).
pub fn measure_full(cfg: &MachineConfig, spec: &AppSpec) -> (f64, Rates) {
    measure(cfg, spec, cfg.llc_ways, MbaLevel::MAX)
}

/// The two §3.3 degradation probes: (LLC degradation when ways drop from
/// all to 1 at MBA 100 %, bandwidth degradation when MBA drops from 100 %
/// to 10 % with all ways). Both are fractions in `[0, 1]`.
pub fn degradations(cfg: &MachineConfig, spec: &AppSpec) -> (f64, f64) {
    let full = measure_ips(cfg, spec, cfg.llc_ways, MbaLevel::MAX);
    let one_way = measure_ips(cfg, spec, 1, MbaLevel::MAX);
    let throttled = measure_ips(cfg, spec, cfg.llc_ways, MbaLevel::MIN);
    let deg = |x: f64| ((full - x) / full).max(0.0);
    (deg(one_way), deg(throttled))
}

/// Applies the paper's classification thresholds to measured degradations.
pub fn classify(cfg: &MachineConfig, spec: &AppSpec) -> Category {
    let (llc, bw) = degradations(cfg, spec);
    Category::classify(llc, bw)
}

/// One point of a miss-ratio curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MrcPoint {
    /// Allocated LLC ways.
    pub ways: u32,
    /// Steady-state LLC miss ratio at that allocation.
    pub miss_ratio: f64,
    /// Steady-state IPS at that allocation.
    pub ips: f64,
}

/// Profiles the benchmark's miss-ratio curve: one solo run per way count
/// from 1 to the machine's way count, at MBA 100 %.
///
/// This is the curve utility-based partitioning schemes (UCP, dCat, …)
/// build on; CoPart deliberately avoids constructing it online — the
/// paper's point is that its FSM probes are much cheaper — but the
/// offline curve is invaluable for calibration and visualisation.
pub fn miss_ratio_curve(cfg: &MachineConfig, spec: &AppSpec) -> Vec<MrcPoint> {
    (1..=cfg.llc_ways)
        .map(|ways| {
            let (ips, rates) = measure(cfg, spec, ways, MbaLevel::MAX);
            MrcPoint {
                ways,
                miss_ratio: rates.miss_ratio,
                ips,
            }
        })
        .collect()
}

/// Minimum way count at which the benchmark reaches `fraction` of its
/// full-resource IPS (at MBA 100 %); `None` if even all ways fall short
/// (possible only through measurement noise).
pub fn required_ways(cfg: &MachineConfig, spec: &AppSpec, fraction: f64) -> Option<u32> {
    let full = measure_ips(cfg, spec, cfg.llc_ways, MbaLevel::MAX);
    (1..=cfg.llc_ways).find(|&w| measure_ips(cfg, spec, w, MbaLevel::MAX) >= fraction * full)
}

/// Minimum MBA level at which the benchmark reaches `fraction` of its
/// full-resource IPS (with all ways); `None` if even 100 % falls short.
pub fn required_mba(cfg: &MachineConfig, spec: &AppSpec, fraction: f64) -> Option<MbaLevel> {
    let full = measure_ips(cfg, spec, cfg.llc_ways, MbaLevel::MAX);
    MbaLevel::all().find(|&l| measure_ips(cfg, spec, cfg.llc_ways, l) >= fraction * full)
}

#[cfg(test)]
mod tests {
    use super::*;
    use copart_sim::trace::AccessPattern;

    fn cfg() -> MachineConfig {
        MachineConfig::xeon_gold_6130()
    }

    fn compute_spec() -> AppSpec {
        AppSpec {
            name: "compute".into(),
            cores: 4,
            ipc_peak: 1.5,
            apki: 0.01,
            write_fraction: 0.0,
            mlp: 4.0,
            phases: vec![(
                1.0,
                AccessPattern::WorkingSetLoop {
                    bytes: 64 * 1024,
                    stride: 64,
                },
            )],
        }
    }

    #[test]
    fn compute_bound_spec_is_insensitive_and_peaks() {
        let cfg = cfg();
        let spec = compute_spec();
        let (ips, rates) = measure_full(&cfg, &spec);
        let peak = 4.0 * cfg.freq_hz * 1.5;
        assert!(ips > 0.95 * peak);
        assert!(rates.ips > 0.9 * peak);
        assert_eq!(classify(&cfg, &spec), Category::Insensitive);
        assert_eq!(required_ways(&cfg, &spec, 0.9), Some(1));
        assert_eq!(required_mba(&cfg, &spec, 0.9), Some(MbaLevel::MIN));
    }

    #[test]
    fn miss_ratio_curve_falls_with_ways_for_a_loop() {
        let cfg = cfg();
        let spec = AppSpec {
            name: "loop".into(),
            cores: 4,
            ipc_peak: 1.2,
            apki: 30.0,
            write_fraction: 0.1,
            mlp: 4.0,
            phases: vec![(
                1.0,
                AccessPattern::WorkingSetLoop {
                    bytes: 10 * 1024 * 1024, // 5 of 11 ways.
                    stride: 64,
                },
            )],
        };
        let curve = miss_ratio_curve(&cfg, &spec);
        assert_eq!(curve.len(), cfg.llc_ways as usize);
        // Starved: thrashing; ample: fitting.
        assert!(curve[0].miss_ratio > 0.5, "1 way: {:?}", curve[0]);
        assert!(
            curve.last().unwrap().miss_ratio < 0.05,
            "11 ways: {:?}",
            curve.last().unwrap()
        );
        // The knee is at the working-set size (5 ways).
        let at_6 = curve[5].miss_ratio;
        assert!(at_6 < 0.1, "past the knee: {at_6}");
        // Weakly decreasing (up to sampling noise).
        for pair in curve.windows(2) {
            assert!(
                pair[1].miss_ratio <= pair[0].miss_ratio + 0.05,
                "MRC rose: {pair:?}"
            );
        }
    }

    #[test]
    fn streamer_is_bw_sensitive() {
        let cfg = cfg();
        let spec = AppSpec {
            name: "streamer".into(),
            cores: 4,
            ipc_peak: 1.0,
            apki: 120.0,
            write_fraction: 0.3,
            mlp: 12.0,
            phases: vec![(1.0, AccessPattern::Stream { bytes: 1 << 30 })],
        };
        assert_eq!(classify(&cfg, &spec), Category::BwSensitive);
        let low = measure_ips(&cfg, &spec, cfg.llc_ways, MbaLevel::MIN);
        let high = measure_ips(&cfg, &spec, cfg.llc_ways, MbaLevel::MAX);
        assert!(low < 0.7 * high);
    }
}
