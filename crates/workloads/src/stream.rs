//! The STREAM bandwidth probe and its per-MBA-level reference table.
//!
//! The paper uses STREAM (§3.3) as the empirical ceiling of memory traffic
//! on the machine: the memory-bandwidth classifier's *memory traffic
//! ratio* divides an application's LLC miss rate by STREAM's miss rate *at
//! the same MBA level* (§5.3). [`StreamReference`] precomputes that
//! per-level table by running the STREAM model solo at every level.

use copart_sim::{AppSpec, MachineConfig, MbaLevel};

use crate::measure;

/// The STREAM model: sequential triad-style sweeps far larger than the
/// LLC, with the canonical one-write-per-two-reads ratio.
pub fn stream_spec(cores: u32) -> AppSpec {
    AppSpec {
        name: "STREAM".into(),
        cores,
        ipc_peak: 1.0,
        apki: 180.0,
        write_fraction: 0.33,
        mlp: 16.0,
        phases: vec![(
            1.0,
            copart_sim::trace::AccessPattern::Stream { bytes: 1 << 30 },
        )],
    }
}

/// STREAM's steady-state LLC miss rate at every MBA level.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamReference {
    /// `misses_per_sec[i]` corresponds to MBA level `(i + 1) × 10`.
    misses_per_sec: [f64; 10],
}

impl StreamReference {
    /// Measures the reference table on the given machine configuration by
    /// running the STREAM model solo at each MBA level with all LLC ways.
    ///
    /// The paper's controller measures this once per machine; callers
    /// should do the same and reuse the table.
    pub fn compute(cfg: &MachineConfig, cores: u32) -> StreamReference {
        let spec = stream_spec(cores);
        let mut misses_per_sec = [0.0f64; 10];
        for (i, level) in MbaLevel::all().enumerate() {
            let (_, rates) = measure::measure(cfg, &spec, cfg.llc_ways, level);
            misses_per_sec[i] = rates.llc_misses_per_sec;
        }
        StreamReference { misses_per_sec }
    }

    /// Builds a table from precomputed values (index 0 = level 10 %).
    pub fn from_table(misses_per_sec: [f64; 10]) -> StreamReference {
        StreamReference { misses_per_sec }
    }

    /// STREAM's LLC miss rate at `level`.
    pub fn misses_per_sec(&self, level: MbaLevel) -> f64 {
        let idx = usize::from(level.percent() / 10) - 1;
        self.misses_per_sec[idx]
    }

    /// The §5.3 memory traffic ratio for an application observed at
    /// `level`.
    pub fn traffic_ratio(&self, app_misses_per_sec: f64, level: MbaLevel) -> f64 {
        copart_telemetry::traffic_ratio(app_misses_per_sec, self.misses_per_sec(level))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_is_monotone_in_level() {
        let cfg = MachineConfig::xeon_gold_6130();
        let r = StreamReference::compute(&cfg, 4);
        let mut prev = 0.0;
        for level in MbaLevel::all() {
            let m = r.misses_per_sec(level);
            assert!(m > 0.0, "no STREAM misses at {level}");
            assert!(
                m >= prev * 0.98,
                "miss rate should not fall as throttling relaxes: {m} < {prev} at {level}"
            );
            prev = m;
        }
        // Heavy throttling must bite hard.
        assert!(
            r.misses_per_sec(MbaLevel::MIN) < 0.5 * r.misses_per_sec(MbaLevel::MAX),
            "MBA 10% should at least halve STREAM traffic"
        );
    }

    #[test]
    fn traffic_ratio_uses_level_specific_reference() {
        let r = StreamReference::from_table([1e7, 2e7, 3e7, 4e7, 5e7, 6e7, 7e7, 8e7, 9e7, 1e8]);
        assert!((r.traffic_ratio(5e6, MbaLevel::new(10)) - 0.5).abs() < 1e-12);
        assert!((r.traffic_ratio(5e6, MbaLevel::new(100)) - 0.05).abs() < 1e-12);
    }

    #[test]
    fn stream_saturates_the_bus_unthrottled() {
        let cfg = MachineConfig::xeon_gold_6130();
        let spec = stream_spec(4);
        let (ips, rates) = measure::measure_full(&cfg, &spec);
        // Bandwidth-bound: achieved traffic ≈ bus bandwidth.
        let traffic = rates.llc_misses_per_sec * cfg.line_bytes as f64;
        assert!(
            traffic > 0.5 * cfg.mem_bw_bytes_per_sec,
            "STREAM traffic {traffic:.3e} should approach the bus limit"
        );
        assert!(ips > 0.0);
    }
}
