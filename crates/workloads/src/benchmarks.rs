//! The Table 2 benchmark models.
//!
//! Each constructor returns an [`AppSpec`] calibrated against the paper's
//! published counter signature and sensitivity anchors (see the crate
//! docs). The numeric parameters are *model calibration data*, not
//! measurements: the original benchmarks cannot run inside a simulator, so
//! the phase mixtures below are the closest synthetic equivalents whose
//! counter behaviour matches what the paper reports.

use copart_sim::trace::AccessPattern;
use copart_sim::AppSpec;

use crate::Category;

const KB: u64 = 1024;
const MB: u64 = 1024 * 1024;

/// Paper-reported characteristics of a benchmark (Table 2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table2Row {
    /// Short name used in the paper ("WN", "CG", ...).
    pub short: &'static str,
    /// Full benchmark name.
    pub name: &'static str,
    /// The paper's category.
    pub category: Category,
    /// LLC accesses per second at full resources.
    pub llc_accesses_per_sec: f64,
    /// LLC misses per second at full resources.
    pub llc_misses_per_sec: f64,
}

/// The 11 evaluated benchmarks (Table 2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// SPLASH-2 `water_nsquared` (WN) — LLC-sensitive.
    WaterNsquared,
    /// SPLASH-2 `water_spatial` (WS) — LLC-sensitive.
    WaterSpatial,
    /// SPLASH-2 `raytrace` (RT) — LLC-sensitive.
    Raytrace,
    /// SPLASH-2 `ocean_cp` (OC) — memory bandwidth-sensitive.
    OceanCp,
    /// NPB `CG` — memory bandwidth-sensitive.
    Cg,
    /// NPB `FT` — memory bandwidth-sensitive.
    Ft,
    /// NPB `SP` — LLC- and memory bandwidth-sensitive.
    Sp,
    /// SPLASH-2 `ocean_ncp` (ON) — LLC- and memory bandwidth-sensitive.
    OceanNcp,
    /// SPLASH-2 `FMM` — LLC- and memory bandwidth-sensitive.
    Fmm,
    /// PARSEC `swaptions` (SW) — insensitive.
    Swaptions,
    /// NPB `EP` — insensitive.
    Ep,
}

impl Benchmark {
    /// All benchmarks, in Table 2 order.
    pub fn all() -> [Benchmark; 11] {
        use Benchmark::*;
        [
            WaterNsquared,
            WaterSpatial,
            Raytrace,
            OceanCp,
            Cg,
            Ft,
            Sp,
            OceanNcp,
            Fmm,
            Swaptions,
            Ep,
        ]
    }

    /// The paper's reported characteristics (Table 2).
    pub fn table2(self) -> Table2Row {
        use Benchmark::*;
        use Category::*;
        match self {
            WaterNsquared => Table2Row {
                short: "WN",
                name: "water_nsquared",
                category: LlcSensitive,
                llc_accesses_per_sec: 6.91e7,
                llc_misses_per_sec: 2.58e4,
            },
            WaterSpatial => Table2Row {
                short: "WS",
                name: "water_spatial",
                category: LlcSensitive,
                llc_accesses_per_sec: 4.32e7,
                llc_misses_per_sec: 9.12e5,
            },
            Raytrace => Table2Row {
                short: "RT",
                name: "raytrace",
                category: LlcSensitive,
                llc_accesses_per_sec: 3.76e7,
                llc_misses_per_sec: 2.16e4,
            },
            OceanCp => Table2Row {
                short: "OC",
                name: "ocean_cp",
                category: BwSensitive,
                llc_accesses_per_sec: 5.19e7,
                llc_misses_per_sec: 4.88e7,
            },
            Cg => Table2Row {
                short: "CG",
                name: "CG",
                category: BwSensitive,
                llc_accesses_per_sec: 3.10e8,
                llc_misses_per_sec: 1.12e8,
            },
            Ft => Table2Row {
                short: "FT",
                name: "FT",
                category: BwSensitive,
                llc_accesses_per_sec: 2.45e7,
                llc_misses_per_sec: 2.00e7,
            },
            Sp => Table2Row {
                short: "SP",
                name: "SP",
                category: Both,
                llc_accesses_per_sec: 1.69e8,
                llc_misses_per_sec: 9.21e7,
            },
            OceanNcp => Table2Row {
                short: "ON",
                name: "ocean_ncp",
                category: Both,
                llc_accesses_per_sec: 9.49e7,
                llc_misses_per_sec: 7.89e7,
            },
            Fmm => Table2Row {
                short: "FMM",
                name: "FMM",
                category: Both,
                llc_accesses_per_sec: 6.12e6,
                llc_misses_per_sec: 3.47e6,
            },
            Swaptions => Table2Row {
                short: "SW",
                name: "swaptions",
                category: Insensitive,
                llc_accesses_per_sec: 1.08e4,
                llc_misses_per_sec: 7.98e2,
            },
            Ep => Table2Row {
                short: "EP",
                name: "EP",
                category: Insensitive,
                llc_accesses_per_sec: 7.34e5,
                llc_misses_per_sec: 1.79e4,
            },
        }
    }

    /// The paper's category for this benchmark.
    pub fn category(self) -> Category {
        self.table2().category
    }

    /// The calibrated model with the paper's default four threads/cores.
    ///
    /// # Examples
    ///
    /// ```
    /// use copart_workloads::Benchmark;
    ///
    /// let spec = Benchmark::Cg.spec();
    /// assert_eq!(spec.name, "CG");
    /// assert_eq!(spec.cores, 4);
    /// ```
    pub fn spec(self) -> AppSpec {
        self.spec_with_cores(4)
    }

    /// The calibrated model pinned to `cores` dedicated cores.
    ///
    /// Per-instruction characteristics (APKI, IPC, phase mixture) are
    /// core-count invariant; aggregate rates scale with the core count, as
    /// they do for the compute-bound region of real benchmarks.
    pub fn spec_with_cores(self, cores: u32) -> AppSpec {
        use AccessPattern::*;
        use Benchmark::*;
        let (ipc_peak, apki, write_fraction, mlp, phases): (
            f64,
            f64,
            f64,
            f64,
            Vec<(f64, AccessPattern)>,
        ) = match self {
            WaterNsquared => (
                1.4,
                5.9,
                0.20,
                2.0,
                vec![
                    (
                        0.5495,
                        WorkingSetLoop {
                            bytes: 7 * MB,
                            stride: 64,
                        },
                    ),
                    (
                        0.30,
                        Zipf {
                            bytes: 9 * MB,
                            exponent: 1.3,
                        },
                    ),
                    (
                        0.15,
                        WorkingSetLoop {
                            bytes: 512 * KB,
                            stride: 64,
                        },
                    ),
                    // Cold/compulsory misses (Table 2: 2.58e4 misses/s).
                    (0.0005, UniformRandom { bytes: 1 << 30 }),
                ],
            ),
            WaterSpatial => (
                1.35,
                3.8,
                0.20,
                2.0,
                vec![
                    (
                        0.578,
                        WorkingSetLoop {
                            bytes: 5 * MB,
                            stride: 64,
                        },
                    ),
                    (
                        0.25,
                        Zipf {
                            bytes: 7 * MB,
                            exponent: 1.3,
                        },
                    ),
                    (
                        0.15,
                        WorkingSetLoop {
                            bytes: 256 * KB,
                            stride: 64,
                        },
                    ),
                    // Boundary-exchange misses (Table 2: 9.12e5 misses/s).
                    (0.022, UniformRandom { bytes: 1 << 30 }),
                ],
            ),
            Raytrace => (
                1.5,
                3.0,
                0.10,
                2.0,
                vec![
                    (
                        0.5993,
                        WorkingSetLoop {
                            bytes: 3 * MB + 256 * KB,
                            stride: 64,
                        },
                    ),
                    (
                        0.30,
                        Zipf {
                            bytes: 5 * MB,
                            exponent: 1.4,
                        },
                    ),
                    (
                        0.10,
                        WorkingSetLoop {
                            bytes: 128 * KB,
                            stride: 64,
                        },
                    ),
                    // Cold scene-graph misses (Table 2: 2.16e4 misses/s).
                    (0.0007, UniformRandom { bytes: 1 << 30 }),
                ],
            ),
            OceanCp => (
                1.0,
                10.0,
                0.30,
                2.5,
                vec![
                    (0.95, Stream { bytes: 128 * MB }),
                    (
                        0.05,
                        WorkingSetLoop {
                            bytes: 256 * KB,
                            stride: 64,
                        },
                    ),
                ],
            ),
            Cg => (
                0.9,
                41.0,
                0.15,
                10.0,
                vec![
                    (0.25, Stream { bytes: 256 * MB }),
                    (0.15, UniformRandom { bytes: 64 * MB }),
                    (
                        0.60,
                        WorkingSetLoop {
                            bytes: 3 * MB / 2,
                            stride: 64,
                        },
                    ),
                ],
            ),
            Ft => (
                1.3,
                4.0,
                0.25,
                2.2,
                vec![
                    (0.80, Stream { bytes: 192 * MB }),
                    (
                        0.20,
                        WorkingSetLoop {
                            bytes: 512 * KB,
                            stride: 64,
                        },
                    ),
                ],
            ),
            Sp => (
                0.8,
                25.0,
                0.25,
                6.0,
                vec![
                    (
                        0.45,
                        WorkingSetLoop {
                            bytes: 9 * MB,
                            stride: 64,
                        },
                    ),
                    (
                        0.10,
                        Zipf {
                            bytes: 12 * MB,
                            exponent: 1.2,
                        },
                    ),
                    (0.45, Stream { bytes: 128 * MB }),
                ],
            ),
            OceanNcp => (
                0.7,
                30.0,
                0.30,
                4.0,
                vec![
                    (
                        0.35,
                        WorkingSetLoop {
                            bytes: 6 * MB,
                            stride: 64,
                        },
                    ),
                    (
                        0.05,
                        Zipf {
                            bytes: 8 * MB,
                            exponent: 1.2,
                        },
                    ),
                    (0.60, Stream { bytes: 192 * MB }),
                ],
            ),
            Fmm => (
                1.2,
                1.2,
                0.20,
                0.4,
                vec![
                    (
                        0.40,
                        WorkingSetLoop {
                            bytes: 10 * MB,
                            stride: 64,
                        },
                    ),
                    (
                        0.20,
                        Zipf {
                            bytes: 14 * MB,
                            exponent: 1.1,
                        },
                    ),
                    (0.40, Stream { bytes: 64 * MB }),
                ],
            ),
            Swaptions => (
                1.8,
                7.1e-4,
                0.10,
                1.0,
                vec![
                    (
                        0.925,
                        WorkingSetLoop {
                            bytes: 64 * KB,
                            stride: 64,
                        },
                    ),
                    // Rare swap-path misses (Table 2: 7.98e2 misses/s).
                    (0.075, UniformRandom { bytes: 1 << 30 }),
                ],
            ),
            Ep => (
                1.6,
                0.055,
                0.10,
                1.0,
                vec![
                    (
                        0.675,
                        WorkingSetLoop {
                            bytes: 512 * KB,
                            stride: 64,
                        },
                    ),
                    (
                        0.30,
                        Zipf {
                            bytes: MB,
                            exponent: 1.3,
                        },
                    ),
                    // Random-number table misses (Table 2: 1.79e4 misses/s).
                    (0.025, UniformRandom { bytes: 1 << 30 }),
                ],
            ),
        };
        AppSpec {
            name: self.table2().name.to_string(),
            cores,
            ipc_peak,
            apki,
            write_fraction,
            mlp,
            phases,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_lists_eleven_unique_benchmarks() {
        let all = Benchmark::all();
        assert_eq!(all.len(), 11);
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn table2_shorts_are_unique() {
        let shorts: Vec<&str> = Benchmark::all().iter().map(|b| b.table2().short).collect();
        let mut dedup = shorts.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), shorts.len());
    }

    #[test]
    fn specs_are_well_formed() {
        for b in Benchmark::all() {
            let s = b.spec();
            assert_eq!(s.cores, 4);
            assert!(s.ipc_peak > 0.0 && s.apki >= 0.0);
            assert!((0.0..=1.0).contains(&s.write_fraction));
            assert!(!s.phases.is_empty());
            let total_weight: f64 = s.phases.iter().map(|(w, _)| w).sum();
            assert!(
                (total_weight - 1.0).abs() < 1e-9,
                "{}: weights {total_weight}",
                s.name
            );
        }
    }

    #[test]
    fn core_count_override() {
        let s = Benchmark::Cg.spec_with_cores(2);
        assert_eq!(s.cores, 2);
        assert_eq!(s.apki, Benchmark::Cg.spec().apki);
    }

    #[test]
    fn categories_match_table2_counts() {
        use Category::*;
        let count = |c: Category| {
            Benchmark::all()
                .iter()
                .filter(|b| b.category() == c)
                .count()
        };
        assert_eq!(count(LlcSensitive), 3);
        assert_eq!(count(BwSensitive), 3);
        assert_eq!(count(Both), 3);
        assert_eq!(count(Insensitive), 2);
    }
}
