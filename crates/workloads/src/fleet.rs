//! Multi-tenant fleet workload: zipf-skewed arrival/departure churn.
//!
//! A consolidation fleet does not see the paper's neat 6-app mixes; it
//! sees hundreds of short-lived tenants whose benchmark popularity is
//! heavily skewed (a handful of hot images dominate) and whose arrivals
//! and lifetimes churn continuously. This module generates that tape
//! deterministically:
//!
//! * [`MixSampler`] — a Zipf(s≈1) distribution over the 11 Table 2
//!   benchmarks, with the popularity *order* itself drawn from the seed
//!   (so different fleets are hot on different images);
//! * [`churn_tape`] — the full arrival schedule: per app an id, a
//!   benchmark, an arrival epoch spread over the horizon, and a service
//!   lifetime (epochs of *placed* residence — time spent waiting in an
//!   admission queue does not count against it).
//!
//! Both are pure functions of `(seed, counts)`: the fleet controller,
//! the planner-scale harness, and the `fleet-placement-deterministic`
//! oracle all replay the identical tape from the identical inputs.

use copart_rng::XorShift64Star;

use crate::Benchmark;

/// Zipf exponent: popularity of the k-th hottest benchmark ∝ 1/k^s.
const ZIPF_S: f64 = 1.1;

/// Shortest service lifetime, in placed epochs.
const MIN_LIFETIME: u64 = 4;

/// A Zipf-skewed sampler over the Table 2 benchmarks.
///
/// The popularity ranking is a seed-derived permutation of
/// [`Benchmark::all`], so which image is "hot" varies per fleet while
/// the skew shape stays fixed.
#[derive(Debug, Clone)]
pub struct MixSampler {
    ranked: Vec<Benchmark>,
    /// Cumulative probability per rank, ending at 1.0.
    cumulative: Vec<f64>,
}

impl MixSampler {
    /// Builds the sampler for a fleet seed.
    pub fn new(seed: u64) -> MixSampler {
        let mut rng = XorShift64Star::for_stream(seed, 0x21bf);
        let mut ranked: Vec<Benchmark> = Benchmark::all().to_vec();
        rng.shuffle(&mut ranked);
        let weights: Vec<f64> = (1..=ranked.len())
            .map(|k| 1.0 / (k as f64).powf(ZIPF_S))
            .collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        let cumulative = weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect();
        MixSampler { ranked, cumulative }
    }

    /// Maps a uniform draw in `[0, 1)` onto a benchmark.
    pub fn sample(&self, u: f64) -> Benchmark {
        let idx = self
            .cumulative
            .iter()
            .position(|&c| u < c)
            .unwrap_or(self.ranked.len() - 1);
        self.ranked[idx]
    }

    /// The benchmarks in popularity order (hottest first).
    pub fn ranking(&self) -> &[Benchmark] {
        &self.ranked
    }
}

/// One tenant in the churn tape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetArrival {
    /// Fleet-unique application id (dense, in arrival order).
    pub app: u64,
    /// The tenant's workload.
    pub bench: Benchmark,
    /// Fleet epoch the tenant shows up for admission.
    pub arrive: u64,
    /// Service lifetime: epochs of placed residence before departure.
    pub lifetime: u64,
}

/// Generates the deterministic churn tape: `n_apps` tenants arriving
/// over the first ~3/4 of `horizon` epochs (so late arrivals still get
/// to run), zipf-skewed benchmarks, geometric-ish lifetimes of at least
/// `MIN_LIFETIME` epochs. Sorted by `(arrive, app)`; app ids are
/// assigned after the sort, so they are dense in admission order —
/// fleet-unique identity is part of the tape.
pub fn churn_tape(n_apps: u64, horizon: u64, seed: u64) -> Vec<FleetArrival> {
    let sampler = MixSampler::new(seed);
    let mut rng = XorShift64Star::for_stream(seed, 0x7a9e);
    let arrival_window = (horizon.saturating_mul(3) / 4).max(1);
    let mut tape: Vec<FleetArrival> = (0..n_apps)
        .map(|_| {
            let bench = sampler.sample(rng.next_f64());
            let arrive = rng.next_below(arrival_window);
            // A coarse geometric: most tenants are short-lived, a tail
            // runs for much of the horizon.
            let mut lifetime = MIN_LIFETIME;
            while lifetime < horizon && rng.gen_bool(0.55) {
                lifetime += MIN_LIFETIME;
            }
            FleetArrival {
                app: 0,
                bench,
                arrive,
                lifetime,
            }
        })
        .collect();
    // next_below is already deterministic; the sort key breaks arrival
    // ties by the generation index, which `sort_by_key` preserves via
    // stability.
    tape.sort_by_key(|a| a.arrive);
    for (i, arrival) in tape.iter_mut().enumerate() {
        arrival.app = i as u64;
    }
    tape
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn tape_is_deterministic_and_sorted() {
        let a = churn_tape(200, 48, 7);
        let b = churn_tape(200, 48, 7);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0].arrive <= w[1].arrive));
        assert!(a.iter().enumerate().all(|(i, x)| x.app == i as u64));
        let c = churn_tape(200, 48, 8);
        assert_ne!(a, c, "different seeds give different tapes");
    }

    #[test]
    fn lifetimes_and_arrivals_are_bounded() {
        for arrival in churn_tape(500, 40, 3) {
            assert!(arrival.arrive < 30, "arrivals stay inside 3/4 horizon");
            assert!(arrival.lifetime >= MIN_LIFETIME);
        }
    }

    #[test]
    fn popularity_is_skewed() {
        let tape = churn_tape(2000, 64, 11);
        let mut counts: BTreeMap<&'static str, u64> = BTreeMap::new();
        for a in &tape {
            *counts.entry(a.bench.table2().short).or_default() += 1;
        }
        let max = counts.values().copied().max().unwrap();
        let min = counts.values().copied().min().unwrap_or(0);
        // Zipf over 11 ranks: the hottest image should dominate the
        // coldest by a wide margin.
        assert!(
            max >= min.max(1) * 4,
            "expected skew, got max={max} min={min}"
        );
    }

    #[test]
    fn sampler_ranking_depends_on_seed() {
        let a = MixSampler::new(1);
        let b = MixSampler::new(2);
        assert_eq!(a.ranking().len(), 11);
        assert_ne!(a.ranking(), b.ranking(), "seeded permutations differ");
        // Cumulative distribution ends at ~1.
        assert!((a.cumulative.last().unwrap() - 1.0).abs() < 1e-12);
    }
}
