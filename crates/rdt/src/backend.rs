//! The backend trait the CoPart controller is written against.

use std::time::Duration;

use copart_sim::{CbmMask, ClosId, MbaLevel};
use copart_telemetry::CounterSnapshot;

use crate::RdtError;

/// What the hardware (or simulator) supports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RdtCapabilities {
    /// Number of CAT-partitionable LLC ways.
    pub llc_ways: u32,
    /// Number of classes of service the hardware exposes.
    pub num_clos: usize,
    /// Minimum MBA level in percent (10 on the evaluated CPU).
    pub mba_min_percent: u8,
    /// MBA level granularity in percent (10 on the evaluated CPU).
    pub mba_step_percent: u8,
}

/// The control-and-observation surface CoPart needs from a platform.
///
/// One *group* corresponds to one consolidated application: on the real
/// system each application runs in its own container whose tasks are
/// assigned to a dedicated resctrl group (= CLOS); in the simulator each
/// application is admitted into its own CLOS. The controller:
///
/// 1. programs each group's CAT way mask and MBA level,
/// 2. lets the platform run for an adaptation period ([`RdtBackend::advance`]),
/// 3. samples each group's counters, and repeats.
///
/// `advance` is virtual time on the simulator and a real sleep on
/// hardware, which is the only place the two differ.
pub trait RdtBackend {
    /// Hardware capabilities.
    fn capabilities(&self) -> RdtCapabilities;

    /// Groups currently under management, in creation order.
    fn groups(&self) -> Vec<ClosId>;

    /// Programs the CAT way mask of a group.
    ///
    /// # Errors
    ///
    /// Fails on an unknown group or a mask invalid for this hardware.
    fn set_cbm(&mut self, group: ClosId, mask: CbmMask) -> Result<(), RdtError>;

    /// Programs the MBA level of a group.
    ///
    /// # Errors
    ///
    /// Fails on an unknown group.
    fn set_mba(&mut self, group: ClosId, level: MbaLevel) -> Result<(), RdtError>;

    /// Reads back a group's current CAT mask and MBA level.
    ///
    /// # Errors
    ///
    /// Fails on an unknown group.
    fn clos_config(&self, group: ClosId) -> Result<(CbmMask, MbaLevel), RdtError>;

    /// Samples a group's cumulative counters.
    ///
    /// # Errors
    ///
    /// Fails on an unknown group or when the counter source fails.
    fn read_counters(&mut self, group: ClosId) -> Result<CounterSnapshot, RdtError>;

    /// Lets the platform execute for `period` (virtual time on the
    /// simulator, wall-clock sleep on hardware).
    ///
    /// # Errors
    ///
    /// Backends may fail if the platform has stopped.
    fn advance(&mut self, period: Duration) -> Result<(), RdtError>;

    /// Monotonic platform time in nanoseconds.
    fn now_ns(&self) -> u64;

    /// Cumulative memory traffic of the group in bytes, RDT's
    /// `mbm_total_bytes` monitoring event. Optional: backends without MBM
    /// report `Unsupported`.
    ///
    /// # Errors
    ///
    /// Fails on an unknown group or when the platform lacks MBM.
    fn read_mbm_total_bytes(&mut self, group: ClosId) -> Result<u64, RdtError> {
        let _ = group;
        Err(RdtError::Unsupported("memory bandwidth monitoring"))
    }

    /// Current LLC occupancy of the group in bytes, RDT's `llc_occupancy`
    /// monitoring event. Optional: backends without CMT report
    /// `Unsupported`.
    ///
    /// # Errors
    ///
    /// Fails on an unknown group or when the platform lacks CMT.
    fn read_llc_occupancy_bytes(&mut self, group: ClosId) -> Result<u64, RdtError> {
        let _ = group;
        Err(RdtError::Unsupported("cache monitoring technology"))
    }
}
