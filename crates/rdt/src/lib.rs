//! Intel Resource Director Technology (RDT) abstraction for CoPart.
//!
//! CoPart's controller actuates two hardware mechanisms — Cache Allocation
//! Technology (CAT) way masks and Memory Bandwidth Allocation (MBA) levels
//! — and samples three per-application counters. This crate defines the
//! [`RdtBackend`] trait capturing exactly that surface, plus two
//! implementations:
//!
//! * [`SimBackend`] — drives the `copart-sim` machine; this is what the
//!   evaluation harness uses, and it advances *virtual* time, so 50-second
//!   consolidation runs finish in milliseconds;
//! * [`ResctrlBackend`] — reads and writes a Linux `resctrl` filesystem
//!   tree (`/sys/fs/resctrl` on an RDT-capable machine, or any directory
//!   with the same layout, which is how the tests exercise it). Control —
//!   group creation, schemata programming, task assignment — is fully
//!   implemented; instruction counters are provided by a pluggable
//!   [`CounterSource`], since on real hardware they come from
//!   `perf_event`/PAPI rather than resctrl itself (§3.2 of the paper).
//!
//! [`TimedBackend`] decorates either implementation with per-operation
//! call counts and latency accumulators, feeding the observability layer's
//! view of how expensive actuation is on a given platform.
//!
//! The controller in `copart-core` is written purely against
//! [`RdtBackend`], so porting it to real hardware is a backend swap.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backend;
mod error;
pub mod resctrl;
mod sim_backend;
mod timed;

pub use backend::{RdtBackend, RdtCapabilities};
pub use error::RdtError;
pub use resctrl::{CounterSource, FileCounterSource, ResctrlBackend};
pub use sim_backend::SimBackend;
pub use timed::{BackendStats, OpStats, TimedBackend};

// Re-export the fundamental resource-control types so dependents don't
// need a direct `copart-sim` dependency for them.
pub use copart_sim::{CbmMask, ClosId, MaskError, MbaLevel, ResourceKind};
