//! [`RdtBackend`] implementation over the `copart-sim` machine.

use std::collections::BTreeMap;
use std::time::Duration;

use copart_sim::{AppHandle, AppSpec, CbmMask, ClosId, Machine, MbaLevel};
use copart_telemetry::CounterSnapshot;

use crate::{RdtBackend, RdtCapabilities, RdtError};

/// A simulated RDT platform: each consolidated application occupies its
/// own CLOS, exactly as CoPart's container-per-application deployment
/// does on real hardware.
///
/// Beyond the [`RdtBackend`] surface, `SimBackend` exposes workload
/// admission/removal and read access to the underlying [`Machine`] so
/// experiment harnesses can inspect ground truth the controller never
/// sees (per-window bandwidth grants, occupancy, and so on).
pub struct SimBackend {
    machine: Machine,
    groups: BTreeMap<ClosId, AppHandle>,
    next_clos: u16,
}

impl SimBackend {
    /// Wraps a machine. Existing machine state (CLOS 0) is left as the
    /// unmanaged default group.
    pub fn new(machine: Machine) -> SimBackend {
        SimBackend {
            machine,
            groups: BTreeMap::new(),
            next_clos: 1,
        }
    }

    /// Admits a workload into a fresh CLOS (full mask, unthrottled MBA)
    /// and returns the group id.
    ///
    /// # Errors
    ///
    /// Fails when the machine has too few free cores.
    pub fn add_workload(&mut self, spec: AppSpec) -> Result<ClosId, RdtError> {
        let clos = ClosId(self.next_clos);
        let ways = self.machine.config().llc_ways;
        self.machine.set_cbm(clos, CbmMask::full(ways))?;
        self.machine.set_mba(clos, MbaLevel::MAX);
        let handle = self.machine.add_app(spec, clos)?;
        self.groups.insert(clos, handle);
        self.next_clos += 1;
        Ok(clos)
    }

    /// Removes a workload and forgets its group.
    ///
    /// # Errors
    ///
    /// Fails on an unknown group.
    pub fn remove_workload(&mut self, group: ClosId) -> Result<(), RdtError> {
        let handle = self
            .groups
            .remove(&group)
            .ok_or(RdtError::UnknownGroup(group))?;
        self.machine.remove_app(handle)?;
        Ok(())
    }

    /// The simulated application handle behind a group.
    pub fn app_of(&self, group: ClosId) -> Option<AppHandle> {
        self.groups.get(&group).copied()
    }

    /// Changes a live workload's behaviour mid-run (program phase change);
    /// see [`Machine::set_app_behaviour`].
    ///
    /// # Errors
    ///
    /// Fails on an unknown group.
    pub fn set_workload_behaviour(
        &mut self,
        group: ClosId,
        ipc_peak: f64,
        apki: f64,
        mlp: f64,
        phases: Vec<(f64, copart_sim::trace::AccessPattern)>,
    ) -> Result<(), RdtError> {
        let handle = self.handle(group)?;
        self.machine
            .set_app_behaviour(handle, ipc_peak, apki, mlp, phases)?;
        Ok(())
    }

    /// Read access to the underlying machine (ground truth for
    /// experiments).
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Mutable access to the underlying machine, for harnesses that need
    /// to manipulate simulation details directly.
    pub fn machine_mut(&mut self) -> &mut Machine {
        &mut self.machine
    }

    fn handle(&self, group: ClosId) -> Result<AppHandle, RdtError> {
        self.groups
            .get(&group)
            .copied()
            .ok_or(RdtError::UnknownGroup(group))
    }

    /// The group table as raw `(CLOS id, app handle)` pairs plus the next
    /// CLOS id to allocate — the snapshot/restore seam for crash
    /// recovery. Pair with [`Machine::snapshot`] for the machine state.
    pub fn export_groups(&self) -> (Vec<(u16, u32)>, u16) {
        (
            self.groups.iter().map(|(c, h)| (c.0, h.raw())).collect(),
            self.next_clos,
        )
    }

    /// Overwrites the group table from values previously captured with
    /// [`SimBackend::export_groups`]. The caller is responsible for
    /// restoring the underlying machine to the matching state.
    pub fn import_groups(&mut self, groups: &[(u16, u32)], next_clos: u16) {
        self.groups = groups
            .iter()
            .map(|&(c, h)| (ClosId(c), AppHandle::from_raw(h)))
            .collect();
        self.next_clos = next_clos;
    }
}

impl RdtBackend for SimBackend {
    fn capabilities(&self) -> RdtCapabilities {
        RdtCapabilities {
            llc_ways: self.machine.config().llc_ways,
            // The simulator has no CLOS count limit; report a generous one.
            num_clos: 64,
            mba_min_percent: MbaLevel::MIN.percent(),
            mba_step_percent: MbaLevel::STEP,
        }
    }

    fn groups(&self) -> Vec<ClosId> {
        self.groups.keys().copied().collect()
    }

    fn set_cbm(&mut self, group: ClosId, mask: CbmMask) -> Result<(), RdtError> {
        self.handle(group)?;
        self.machine.set_cbm(group, mask)?;
        Ok(())
    }

    fn set_mba(&mut self, group: ClosId, level: MbaLevel) -> Result<(), RdtError> {
        self.handle(group)?;
        self.machine.set_mba(group, level);
        Ok(())
    }

    fn clos_config(&self, group: ClosId) -> Result<(CbmMask, MbaLevel), RdtError> {
        self.handle(group)?;
        self.machine
            .clos_config(group)
            .ok_or(RdtError::UnknownGroup(group))
    }

    fn read_counters(&mut self, group: ClosId) -> Result<CounterSnapshot, RdtError> {
        let handle = self.handle(group)?;
        Ok(self.machine.counters(handle)?)
    }

    fn advance(&mut self, period: Duration) -> Result<(), RdtError> {
        let ns = u64::try_from(period.as_nanos()).unwrap_or(u64::MAX);
        self.machine.tick(ns);
        Ok(())
    }

    fn now_ns(&self) -> u64 {
        self.machine.now_ns()
    }

    fn read_mbm_total_bytes(&mut self, group: ClosId) -> Result<u64, RdtError> {
        let handle = self.handle(group)?;
        Ok(self.machine.mbm_total_bytes(handle)?)
    }

    fn read_llc_occupancy_bytes(&mut self, group: ClosId) -> Result<u64, RdtError> {
        let handle = self.handle(group)?;
        Ok(self.machine.llc_occupancy_bytes(handle)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use copart_sim::trace::AccessPattern;
    use copart_sim::MachineConfig;

    fn spec(name: &str) -> AppSpec {
        AppSpec {
            name: name.into(),
            cores: 1,
            ipc_peak: 1.0,
            apki: 10.0,
            write_fraction: 0.1,
            mlp: 4.0,
            phases: vec![(1.0, AccessPattern::UniformRandom { bytes: 1 << 20 })],
        }
    }

    fn backend() -> SimBackend {
        SimBackend::new(Machine::new(MachineConfig::tiny_test()))
    }

    #[test]
    fn workloads_get_distinct_groups() {
        let mut b = backend();
        let g1 = b.add_workload(spec("a")).unwrap();
        let g2 = b.add_workload(spec("b")).unwrap();
        assert_ne!(g1, g2);
        assert_eq!(b.groups(), vec![g1, g2]);
    }

    #[test]
    fn group_configuration_round_trips() {
        let mut b = backend();
        let g = b.add_workload(spec("a")).unwrap();
        let mask = CbmMask::contiguous(0, 2, 4).unwrap();
        b.set_cbm(g, mask).unwrap();
        b.set_mba(g, MbaLevel::new(30)).unwrap();
        let (m, l) = b.clos_config(g).unwrap();
        assert_eq!(m, mask);
        assert_eq!(l, MbaLevel::new(30));
    }

    #[test]
    fn unknown_group_operations_fail() {
        let mut b = backend();
        let bogus = ClosId(42);
        assert!(matches!(
            b.set_mba(bogus, MbaLevel::MAX),
            Err(RdtError::UnknownGroup(_))
        ));
        assert!(matches!(
            b.read_counters(bogus),
            Err(RdtError::UnknownGroup(_))
        ));
        assert!(matches!(
            b.remove_workload(bogus),
            Err(RdtError::UnknownGroup(_))
        ));
    }

    #[test]
    fn monitoring_events_are_exposed() {
        let mut b = backend();
        let g = b.add_workload(spec("a")).unwrap();
        b.advance(Duration::from_millis(500)).unwrap();
        let occ = b.read_llc_occupancy_bytes(g).unwrap();
        let mbm = b.read_mbm_total_bytes(g).unwrap();
        assert!(occ > 0, "a running app occupies cache");
        assert!(mbm > 0, "a missing app generates traffic");
        b.advance(Duration::from_millis(500)).unwrap();
        assert!(b.read_mbm_total_bytes(g).unwrap() >= mbm, "MBM is monotone");
    }

    #[test]
    fn advance_moves_time_and_counters() {
        let mut b = backend();
        let g = b.add_workload(spec("a")).unwrap();
        let s0 = b.read_counters(g).unwrap();
        b.advance(Duration::from_millis(100)).unwrap();
        let s1 = b.read_counters(g).unwrap();
        assert_eq!(b.now_ns(), 100_000_000);
        assert!(s1.instructions > s0.instructions);
    }

    #[test]
    fn removal_invalidates_group() {
        let mut b = backend();
        let g = b.add_workload(spec("a")).unwrap();
        b.remove_workload(g).unwrap();
        assert!(b.groups().is_empty());
        assert!(b.read_counters(g).is_err());
    }

    #[test]
    fn group_table_export_import_round_trips() {
        let mut b = backend();
        let g1 = b.add_workload(spec("a")).unwrap();
        let g2 = b.add_workload(spec("b")).unwrap();
        b.remove_workload(g1).unwrap();
        let (groups, next_clos) = b.export_groups();
        let machine_snap = b.machine().snapshot();

        let mut restored = backend();
        restored.machine_mut().restore(&machine_snap).unwrap();
        restored.import_groups(&groups, next_clos);
        assert_eq!(restored.groups(), vec![g2]);
        assert_eq!(restored.app_of(g2), b.app_of(g2));
        // The next admission picks the same fresh CLOS in both backends.
        let ga = b.add_workload(spec("c")).unwrap();
        let gb = restored.add_workload(spec("c")).unwrap();
        assert_eq!(ga, gb);
    }

    #[test]
    fn invalid_mask_is_rejected() {
        let mut b = backend();
        let g = b.add_workload(spec("a")).unwrap();
        // Mask wider than the tiny machine's 4 ways.
        let wide = CbmMask::full(8);
        assert!(matches!(b.set_cbm(g, wide), Err(RdtError::Sim(_))));
    }
}
