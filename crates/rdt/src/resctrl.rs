//! A Linux `resctrl` filesystem backend.
//!
//! On an RDT-capable machine, `mount -t resctrl resctrl /sys/fs/resctrl`
//! exposes CAT and MBA control as a directory tree: each resource group is
//! a directory whose `schemata` file carries lines like
//!
//! ```text
//! L3:0=7ff
//! MB:0=100
//! ```
//!
//! and whose `tasks` file lists member PIDs. This module implements that
//! protocol against *any* directory with the resctrl layout, which makes
//! it fully testable (the tests build a mock tree in a tempdir via
//! [`ResctrlBackend::create_mock_tree`]) and directly usable on real
//! hardware.
//!
//! Retired-instruction counts are not part of resctrl — the paper samples
//! them with PAPI — so counter sampling is delegated to a [`CounterSource`].
//! [`FileCounterSource`] reads them from a per-group `copart_counters`
//! file (what the mock tree and the failure-injection tests use); a
//! production deployment would implement the trait over `perf_event`.

use std::collections::BTreeMap;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use copart_sim::{CbmMask, ClosId, MbaLevel};
use copart_telemetry::CounterSnapshot;

use crate::{RdtBackend, RdtCapabilities, RdtError};

/// Provides per-group instruction/LLC counters (resctrl itself does not
/// expose instruction counts; the paper uses PAPI).
pub trait CounterSource {
    /// Samples cumulative counters for the named group.
    ///
    /// # Errors
    ///
    /// Implementations fail when the underlying counter files or perf
    /// events are unavailable.
    fn read(&mut self, group_dir: &Path) -> Result<CounterSnapshot, RdtError>;
}

/// Reads counters from `<group>/copart_counters`, a whitespace-separated
/// `instructions cycles llc_accesses llc_misses` line. Timestamps come
/// from the backend's monotonic clock at read time.
#[derive(Debug, Default, Clone, Copy)]
pub struct FileCounterSource;

impl CounterSource for FileCounterSource {
    fn read(&mut self, group_dir: &Path) -> Result<CounterSnapshot, RdtError> {
        let path = group_dir.join("copart_counters");
        let text = read_file(&path)?;
        let fields: Vec<u64> = text
            .split_whitespace()
            .map(|t| t.parse::<u64>())
            .collect::<Result<_, _>>()
            .map_err(|e| RdtError::Parse {
                path: path.display().to_string(),
                message: e.to_string(),
            })?;
        if fields.len() != 4 {
            return Err(RdtError::Parse {
                path: path.display().to_string(),
                message: format!("expected 4 counter fields, found {}", fields.len()),
            });
        }
        Ok(CounterSnapshot {
            timestamp_ns: 0, // Stamped by the backend.
            instructions: fields[0],
            cycles: fields[1],
            llc_accesses: fields[2],
            llc_misses: fields[3],
        })
    }
}

/// One group's parsed `schemata` contents: per-domain L3 masks and MB
/// levels. The evaluated machine has a single socket, i.e. domain 0.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schemata {
    /// L3 CAT bitmask per cache domain.
    pub l3: BTreeMap<u32, u32>,
    /// MBA level (percent) per memory domain.
    pub mb: BTreeMap<u32, u8>,
}

impl Schemata {
    /// Parses the contents of a `schemata` file.
    ///
    /// # Errors
    ///
    /// Fails on malformed lines, on MB levels outside `1..=100`, and on a
    /// resource repeating a domain id (a duplicate would otherwise
    /// silently last-win and desynchronize the controller's view from
    /// the kernel's). Unknown resource prefixes are ignored (real kernels
    /// expose resources we do not manage, e.g. `L2`); `L3CODE`/`L3DATA`
    /// are tracked as distinct resources for duplicate detection even
    /// though both feed the `l3` table.
    pub fn parse(text: &str) -> Result<Schemata, String> {
        let mut s = Schemata::default();
        // (resource, domain) pairs already seen, for duplicate rejection.
        let mut seen: std::collections::BTreeSet<(String, u32)> = std::collections::BTreeSet::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (resource, rest) = line
                .split_once(':')
                .ok_or_else(|| format!("missing ':' in line {line:?}"))?;
            let resource = resource.trim();
            for part in rest.split(';') {
                let part = part.trim();
                if part.is_empty() {
                    continue;
                }
                let (dom, val) = part
                    .split_once('=')
                    .ok_or_else(|| format!("missing '=' in {part:?}"))?;
                let dom: u32 = dom
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad domain id {dom:?}"))?;
                let managed = matches!(resource, "L3" | "L3CODE" | "L3DATA" | "MB");
                if managed && !seen.insert((resource.to_string(), dom)) {
                    return Err(format!("duplicate domain {dom} for resource {resource}"));
                }
                match resource {
                    "L3" | "L3CODE" | "L3DATA" => {
                        let bits = u32::from_str_radix(val.trim(), 16)
                            .map_err(|_| format!("bad L3 mask {val:?}"))?;
                        s.l3.insert(dom, bits);
                    }
                    "MB" => {
                        let pct: u8 = val
                            .trim()
                            .parse()
                            .map_err(|_| format!("bad MB level {val:?}"))?;
                        if pct == 0 || pct > 100 {
                            return Err(format!("MB level {pct} outside 1..=100"));
                        }
                        s.mb.insert(dom, pct);
                    }
                    _ => {} // Unmanaged resource (L2, SMBA, ...).
                }
            }
        }
        Ok(s)
    }

    /// Checks every L3 mask against the mounted `cbm_len`: a mask with
    /// bits beyond the hardware's way count (or no bits at all) cannot
    /// have come from a healthy kernel and would corrupt any
    /// [`CbmMask`]-level math downstream. Applied at the same boundary as
    /// `set_cbm`'s validation, so reads and writes enforce one rule.
    ///
    /// # Errors
    ///
    /// Describes the first offending domain.
    pub fn check_l3_width(&self, cbm_len: u32) -> Result<(), String> {
        for (dom, bits) in &self.l3 {
            if *bits == 0 {
                return Err(format!("L3 domain {dom} has an empty mask"));
            }
            if cbm_len < 32 && bits >> cbm_len != 0 {
                return Err(format!(
                    "L3 domain {dom} mask {bits:x} wider than cbm_len {cbm_len}"
                ));
            }
        }
        Ok(())
    }

    /// Renders the schemata in the format the kernel accepts.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if !self.l3.is_empty() {
            let doms: Vec<String> = self.l3.iter().map(|(d, b)| format!("{d}={b:x}")).collect();
            out.push_str(&format!("L3:{}\n", doms.join(";")));
        }
        if !self.mb.is_empty() {
            let doms: Vec<String> = self.mb.iter().map(|(d, p)| format!("{d}={p}")).collect();
            out.push_str(&format!("MB:{}\n", doms.join(";")));
        }
        out
    }
}

/// The resctrl-filesystem backend.
pub struct ResctrlBackend<C: CounterSource = FileCounterSource> {
    root: PathBuf,
    caps: RdtCapabilities,
    groups: BTreeMap<ClosId, String>,
    next_clos: u16,
    counters: C,
    epoch: Instant,
}

impl<C: CounterSource> ResctrlBackend<C> {
    /// Opens a resctrl tree rooted at `root` (e.g. `/sys/fs/resctrl`),
    /// reading capabilities from its `info` directory.
    ///
    /// # Errors
    ///
    /// Fails when the info files are missing or malformed.
    pub fn mount(root: impl Into<PathBuf>, counters: C) -> Result<Self, RdtError> {
        let root = root.into();
        let cbm_mask = read_file(&root.join("info/L3/cbm_mask"))?;
        let llc_ways = u32::from_str_radix(cbm_mask.trim(), 16)
            .map_err(|e| RdtError::Parse {
                path: root.join("info/L3/cbm_mask").display().to_string(),
                message: e.to_string(),
            })?
            .count_ones();
        let num_clos: usize = parse_file(&root.join("info/L3/num_closids"))?;
        let mba_min_percent: u8 = parse_file(&root.join("info/MB/min_bandwidth"))?;
        let mba_step_percent: u8 = parse_file(&root.join("info/MB/bandwidth_gran"))?;
        Ok(ResctrlBackend {
            root,
            caps: RdtCapabilities {
                llc_ways,
                num_clos,
                mba_min_percent,
                mba_step_percent,
            },
            groups: BTreeMap::new(),
            next_clos: 1,
            counters,
            epoch: Instant::now(),
        })
    }

    /// Creates a resource group directory and registers it.
    ///
    /// # Errors
    ///
    /// Fails when the directory cannot be created (e.g. the hardware ran
    /// out of CLOSes) or the group limit is reached.
    pub fn create_group(&mut self, name: &str) -> Result<ClosId, RdtError> {
        if self.groups.len() + 1 >= self.caps.num_clos {
            return Err(RdtError::Unsupported("hardware CLOS limit reached"));
        }
        let dir = self.root.join(name);
        fs::create_dir_all(&dir).map_err(|e| io_err(&dir, e))?;
        // A freshly mkdir'ed group on real resctrl inherits full resources;
        // in a mock tree the files may not exist yet, so seed them.
        let schemata = dir.join("schemata");
        if !schemata.exists() {
            let full = Schemata {
                l3: [(0, (1u32 << self.caps.llc_ways) - 1)].into(),
                mb: [(0, 100)].into(),
            };
            write_file(&schemata, &full.render())?;
        }
        let tasks = dir.join("tasks");
        if !tasks.exists() {
            write_file(&tasks, "")?;
        }
        // Monitoring files (populated by hardware on real resctrl; seeded
        // at zero in mock trees).
        let mon = dir.join("mon_data/mon_L3_00");
        if !mon.exists() {
            fs::create_dir_all(&mon).map_err(|e| io_err(&mon, e))?;
            write_file(&mon.join("llc_occupancy"), "0\n")?;
            write_file(&mon.join("mbm_total_bytes"), "0\n")?;
        }
        let clos = ClosId(self.next_clos);
        self.next_clos += 1;
        self.groups.insert(clos, name.to_string());
        Ok(clos)
    }

    /// Removes a group directory (moving its tasks back to the default
    /// group, as the kernel does on rmdir).
    ///
    /// # Errors
    ///
    /// Fails on an unknown group or when the directory cannot be removed.
    pub fn remove_group(&mut self, group: ClosId) -> Result<(), RdtError> {
        let name = self
            .groups
            .remove(&group)
            .ok_or(RdtError::UnknownGroup(group))?;
        let dir = self.root.join(&name);
        fs::remove_dir_all(&dir).map_err(|e| io_err(&dir, e))?;
        Ok(())
    }

    /// Appends task PIDs to the group's `tasks` file.
    ///
    /// # Errors
    ///
    /// Fails on an unknown group or an I/O error.
    pub fn assign_tasks(&mut self, group: ClosId, pids: &[u32]) -> Result<(), RdtError> {
        let dir = self.group_dir(group)?;
        let path = dir.join("tasks");
        let mut f = fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .map_err(|e| io_err(&path, e))?;
        for pid in pids {
            writeln!(f, "{pid}").map_err(|e| io_err(&path, e))?;
        }
        Ok(())
    }

    /// The directory of a registered group.
    ///
    /// # Errors
    ///
    /// Fails on an unknown group.
    pub fn group_dir(&self, group: ClosId) -> Result<PathBuf, RdtError> {
        self.groups
            .get(&group)
            .map(|name| self.root.join(name))
            .ok_or(RdtError::UnknownGroup(group))
    }

    /// Builds a directory tree mimicking a freshly mounted resctrl
    /// filesystem — used by tests, examples, and anyone wanting to dry-run
    /// the controller without RDT hardware.
    ///
    /// # Errors
    ///
    /// Fails when the files cannot be created.
    pub fn create_mock_tree(root: &Path, caps: RdtCapabilities) -> Result<(), RdtError> {
        fs::create_dir_all(root.join("info/L3")).map_err(|e| io_err(root, e))?;
        fs::create_dir_all(root.join("info/MB")).map_err(|e| io_err(root, e))?;
        write_file(
            &root.join("info/L3/cbm_mask"),
            &format!("{:x}\n", (1u32 << caps.llc_ways) - 1),
        )?;
        write_file(
            &root.join("info/L3/num_closids"),
            &format!("{}\n", caps.num_clos),
        )?;
        write_file(
            &root.join("info/MB/min_bandwidth"),
            &format!("{}\n", caps.mba_min_percent),
        )?;
        write_file(
            &root.join("info/MB/bandwidth_gran"),
            &format!("{}\n", caps.mba_step_percent),
        )?;
        let full = Schemata {
            l3: [(0, (1u32 << caps.llc_ways) - 1)].into(),
            mb: [(0, 100)].into(),
        };
        write_file(&root.join("schemata"), &full.render())?;
        write_file(&root.join("tasks"), "")?;
        Ok(())
    }

    fn read_schemata(&self, group: ClosId) -> Result<Schemata, RdtError> {
        let path = self.group_dir(group)?.join("schemata");
        let text = read_file(&path)?;
        let s = Schemata::parse(&text).map_err(|message| RdtError::Parse {
            path: path.display().to_string(),
            message,
        })?;
        // Same rule `set_cbm` enforces on writes: masks must fit the
        // mounted cbm_len, whichever direction they travel.
        s.check_l3_width(self.caps.llc_ways)
            .map_err(|message| RdtError::Parse {
                path: path.display().to_string(),
                message,
            })?;
        Ok(s)
    }

    fn write_schemata(&self, group: ClosId, s: &Schemata) -> Result<(), RdtError> {
        let path = self.group_dir(group)?.join("schemata");
        write_file(&path, &s.render())
    }
}

impl<C: CounterSource> RdtBackend for ResctrlBackend<C> {
    fn capabilities(&self) -> RdtCapabilities {
        self.caps
    }

    fn groups(&self) -> Vec<ClosId> {
        self.groups.keys().copied().collect()
    }

    fn set_cbm(&mut self, group: ClosId, mask: CbmMask) -> Result<(), RdtError> {
        CbmMask::new(mask.bits(), self.caps.llc_ways)?;
        let mut s = self.read_schemata(group)?;
        // Single-socket testbed: program domain 0 (and mirror to any other
        // domains present so multi-socket trees stay consistent).
        if s.l3.is_empty() {
            s.l3.insert(0, mask.bits());
        } else {
            for bits in s.l3.values_mut() {
                *bits = mask.bits();
            }
        }
        self.write_schemata(group, &s)
    }

    fn set_mba(&mut self, group: ClosId, level: MbaLevel) -> Result<(), RdtError> {
        let mut s = self.read_schemata(group)?;
        if s.mb.is_empty() {
            s.mb.insert(0, level.percent());
        } else {
            for pct in s.mb.values_mut() {
                *pct = level.percent();
            }
        }
        self.write_schemata(group, &s)
    }

    fn clos_config(&self, group: ClosId) -> Result<(CbmMask, MbaLevel), RdtError> {
        let s = self.read_schemata(group)?;
        let bits = s.l3.get(&0).copied().ok_or_else(|| RdtError::Parse {
            path: format!("{group} schemata"),
            message: "no L3 domain 0".into(),
        })?;
        let pct = s.mb.get(&0).copied().ok_or_else(|| RdtError::Parse {
            path: format!("{group} schemata"),
            message: "no MB domain 0".into(),
        })?;
        Ok((CbmMask::new(bits, self.caps.llc_ways)?, MbaLevel::new(pct)))
    }

    fn read_counters(&mut self, group: ClosId) -> Result<CounterSnapshot, RdtError> {
        let dir = self.group_dir(group)?;
        let mut snap = self.counters.read(&dir)?;
        snap.timestamp_ns = self.now_ns();
        Ok(snap)
    }

    fn advance(&mut self, period: Duration) -> Result<(), RdtError> {
        std::thread::sleep(period);
        Ok(())
    }

    fn now_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    fn read_mbm_total_bytes(&mut self, group: ClosId) -> Result<u64, RdtError> {
        let dir = self.group_dir(group)?;
        parse_file(&dir.join("mon_data/mon_L3_00/mbm_total_bytes"))
    }

    fn read_llc_occupancy_bytes(&mut self, group: ClosId) -> Result<u64, RdtError> {
        let dir = self.group_dir(group)?;
        parse_file(&dir.join("mon_data/mon_L3_00/llc_occupancy"))
    }
}

fn io_err(path: &Path, source: std::io::Error) -> RdtError {
    RdtError::Io {
        path: path.display().to_string(),
        source,
    }
}

fn read_file(path: &Path) -> Result<String, RdtError> {
    fs::read_to_string(path).map_err(|e| io_err(path, e))
}

fn write_file(path: &Path, contents: &str) -> Result<(), RdtError> {
    fs::write(path, contents).map_err(|e| io_err(path, e))
}

fn parse_file<T: std::str::FromStr>(path: &Path) -> Result<T, RdtError>
where
    T::Err: std::fmt::Display,
{
    let text = read_file(path)?;
    text.trim().parse().map_err(|e: T::Err| RdtError::Parse {
        path: path.display().to_string(),
        message: e.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn caps() -> RdtCapabilities {
        RdtCapabilities {
            llc_ways: 11,
            num_clos: 16,
            mba_min_percent: 10,
            mba_step_percent: 10,
        }
    }

    fn temp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("copart-resctrl-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn mounted(tag: &str) -> (PathBuf, ResctrlBackend) {
        let root = temp_root(tag);
        ResctrlBackend::<FileCounterSource>::create_mock_tree(&root, caps()).unwrap();
        let b = ResctrlBackend::mount(&root, FileCounterSource).unwrap();
        (root, b)
    }

    #[test]
    fn schemata_round_trip() {
        let text = "L3:0=7ff\nMB:0=70\n";
        let s = Schemata::parse(text).unwrap();
        assert_eq!(s.l3[&0], 0x7ff);
        assert_eq!(s.mb[&0], 70);
        assert_eq!(s.render(), text);
    }

    #[test]
    fn schemata_multi_domain_and_unknown_resources() {
        let s = Schemata::parse("L3:0=ff;1=f0\nL2:0=3\nMB:0=50;1=100\n").unwrap();
        assert_eq!(s.l3.len(), 2);
        assert_eq!(s.l3[&1], 0xf0);
        assert_eq!(s.mb[&1], 100);
        assert_eq!(s.render(), "L3:0=ff;1=f0\nMB:0=50;1=100\n");
    }

    #[test]
    fn schemata_rejects_garbage() {
        assert!(Schemata::parse("L3 0=7ff").is_err());
        assert!(Schemata::parse("L3:0").is_err());
        assert!(Schemata::parse("L3:x=7ff").is_err());
        assert!(Schemata::parse("L3:0=zz").is_err());
        assert!(Schemata::parse("MB:0=abc").is_err());
    }

    /// Regression: `copart-check`'s schemata oracle found that MB levels
    /// above 100 parsed fine and duplicate domain ids silently last-won
    /// (corpus entries `schemata-mb-over-100.case`,
    /// `schemata-duplicate-domain.case`).
    #[test]
    fn schemata_validates_mb_range_and_duplicate_domains() {
        assert!(Schemata::parse("MB:0=101").is_err());
        assert!(Schemata::parse("MB:0=255").is_err());
        assert!(Schemata::parse("MB:0=0").is_err());
        assert_eq!(Schemata::parse("MB:0=100").unwrap().mb[&0], 100);
        assert_eq!(Schemata::parse("MB:0=1").unwrap().mb[&0], 1);
        // Duplicates, same line and across lines, for either resource.
        assert!(Schemata::parse("MB:0=50;0=60").is_err());
        assert!(Schemata::parse("L3:0=f;0=3").is_err());
        assert!(Schemata::parse("L3:0=f\nL3:0=3\n").is_err());
        assert!(Schemata::parse("MB:0=50\nMB:0=60\n").is_err());
        // CDP-style trees repeat domains across L3CODE/L3DATA — distinct
        // resources, so still accepted.
        assert!(Schemata::parse("L3CODE:0=f\nL3DATA:0=3\n").is_ok());
        // Unmanaged resources may repeat domains; we never read them.
        assert!(Schemata::parse("L2:0=3\nL2:0=1\n").is_ok());
    }

    #[test]
    fn l3_width_check_matches_set_cbm_boundary() {
        let s = Schemata::parse("L3:0=7ff\n").unwrap();
        assert!(s.check_l3_width(11).is_ok());
        assert!(s.check_l3_width(10).is_err());
        let empty = Schemata {
            l3: [(0, 0)].into(),
            mb: BTreeMap::new(),
        };
        assert!(empty.check_l3_width(11).is_err());
    }

    /// A schemata file wider than the mounted cbm_len is rejected on the
    /// read path, mirroring `set_cbm`'s write-side validation.
    #[test]
    fn oversized_on_disk_mask_is_rejected_on_read() {
        let (root, mut b) = mounted("overwide");
        let g = b.create_group("grp").unwrap();
        fs::write(root.join("grp/schemata"), "L3:0=fff\nMB:0=100\n").unwrap();
        assert!(matches!(b.clos_config(g), Err(RdtError::Parse { .. })));
        // set_mba must not round-trip the bogus mask back to disk either.
        assert!(b.set_mba(g, MbaLevel::new(50)).is_err());
    }

    #[test]
    fn mount_reads_capabilities_from_info() {
        let (_root, b) = mounted("caps");
        assert_eq!(b.capabilities(), caps());
    }

    #[test]
    fn mount_fails_without_info_tree() {
        let root = temp_root("noinfo");
        assert!(matches!(
            ResctrlBackend::mount(&root, FileCounterSource),
            Err(RdtError::Io { .. })
        ));
    }

    #[test]
    fn group_lifecycle_and_schemata_programming() {
        let (root, mut b) = mounted("lifecycle");
        let g = b.create_group("copart-app-0").unwrap();
        let mask = CbmMask::contiguous(2, 3, 11).unwrap();
        b.set_cbm(g, mask).unwrap();
        b.set_mba(g, MbaLevel::new(40)).unwrap();
        // Verify on-disk representation, exactly what the kernel would see.
        let text = fs::read_to_string(root.join("copart-app-0/schemata")).unwrap();
        assert_eq!(text, "L3:0=1c\nMB:0=40\n");
        let (m, l) = b.clos_config(g).unwrap();
        assert_eq!(m, mask);
        assert_eq!(l.percent(), 40);
        b.remove_group(g).unwrap();
        assert!(!root.join("copart-app-0").exists());
        assert!(b.clos_config(g).is_err());
    }

    #[test]
    fn task_assignment_appends_pids() {
        let (root, mut b) = mounted("tasks");
        let g = b.create_group("grp").unwrap();
        b.assign_tasks(g, &[100, 200]).unwrap();
        b.assign_tasks(g, &[300]).unwrap();
        let text = fs::read_to_string(root.join("grp/tasks")).unwrap();
        assert_eq!(text, "100\n200\n300\n");
    }

    #[test]
    fn clos_limit_is_enforced() {
        let root = temp_root("limit");
        let mut small = caps();
        small.num_clos = 3; // Default group + 2 creatable.
        ResctrlBackend::<FileCounterSource>::create_mock_tree(&root, small).unwrap();
        let mut b = ResctrlBackend::mount(&root, FileCounterSource).unwrap();
        b.create_group("a").unwrap();
        b.create_group("b").unwrap();
        assert!(matches!(b.create_group("c"), Err(RdtError::Unsupported(_))));
    }

    #[test]
    fn file_counter_source_reads_and_validates() {
        let (root, mut b) = mounted("counters");
        let g = b.create_group("grp").unwrap();
        fs::write(root.join("grp/copart_counters"), "1000 2000 50 5\n").unwrap();
        let snap = b.read_counters(g).unwrap();
        assert_eq!(snap.instructions, 1000);
        assert_eq!(snap.llc_misses, 5);
        // Corrupt file → parse error (failure injection).
        fs::write(root.join("grp/copart_counters"), "1000 x 50 5\n").unwrap();
        assert!(matches!(b.read_counters(g), Err(RdtError::Parse { .. })));
        fs::write(root.join("grp/copart_counters"), "1 2 3\n").unwrap();
        assert!(matches!(b.read_counters(g), Err(RdtError::Parse { .. })));
        // Missing file → I/O error.
        fs::remove_file(root.join("grp/copart_counters")).unwrap();
        assert!(matches!(b.read_counters(g), Err(RdtError::Io { .. })));
    }

    #[test]
    fn monitoring_files_are_created_and_read() {
        let (root, mut b) = mounted("mon");
        let g = b.create_group("grp").unwrap();
        assert_eq!(b.read_mbm_total_bytes(g).unwrap(), 0);
        assert_eq!(b.read_llc_occupancy_bytes(g).unwrap(), 0);
        fs::write(
            root.join("grp/mon_data/mon_L3_00/mbm_total_bytes"),
            "123456\n",
        )
        .unwrap();
        assert_eq!(b.read_mbm_total_bytes(g).unwrap(), 123_456);
    }

    #[test]
    fn invalid_mask_rejected_before_touching_disk() {
        let (_root, mut b) = mounted("badmask");
        let g = b.create_group("grp").unwrap();
        let too_wide = CbmMask::full(12);
        assert!(matches!(b.set_cbm(g, too_wide), Err(RdtError::Mask(_))));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use copart_rng::XorShift64Star;
    use std::collections::BTreeMap;

    /// Any schemata we can render parses back to the same value
    /// (seeded random maps stand in for the old proptest generators).
    #[test]
    fn schemata_render_parse_round_trip() {
        let mut rng = XorShift64Star::seed_from_u64(0x5C_E4A1);
        for _ in 0..300 {
            let mut l3 = BTreeMap::new();
            for _ in 0..rng.gen_range(0..3usize) {
                l3.insert(rng.gen_range(0..4u32), rng.gen_range(1..0x800u32));
            }
            let mut mb = BTreeMap::new();
            for _ in 0..rng.gen_range(0..3usize) {
                mb.insert(rng.gen_range(0..4u32), rng.gen_range(1..=100u8));
            }
            let s = Schemata { l3, mb };
            let parsed = Schemata::parse(&s.render()).unwrap();
            assert_eq!(parsed, s);
        }
    }

    /// Arbitrary junk either fails to parse or parses without panic.
    #[test]
    fn schemata_parser_never_panics() {
        let mut rng = XorShift64Star::seed_from_u64(0x5C_E4A2);
        // A character soup biased toward the tokens the parser cares
        // about, so the fuzz actually exercises its branches.
        const ALPHABET: &[char] = &[
            'L', '3', 'M', 'B', ':', ';', '=', ',', '0', '1', '9', 'a', 'f', 'x', ' ', '\t', '\n',
            '-', '%', 'ÿ', '☃',
        ];
        for _ in 0..500 {
            let len = rng.gen_range(0..120usize);
            let text: String = (0..len)
                .map(|_| ALPHABET[rng.gen_range(0..ALPHABET.len())])
                .collect();
            let _ = Schemata::parse(&text);
        }
        // A few structured near-misses.
        for text in [
            "L3:0=",
            "L3:=f",
            "MB:0=0",
            "MB:0=101",
            "L3:0=f;MB:0=50",
            "L3:0=f\nMB:0=50\n",
            "XX:0=1",
        ] {
            let _ = Schemata::parse(text);
        }
    }
}
