//! Error type shared by all RDT backends.

use std::fmt;
use std::io;

use copart_sim::{ClosId, MaskError, SimError};

/// Errors raised by RDT backends.
#[derive(Debug)]
pub enum RdtError {
    /// The group/CLOS is unknown to the backend.
    UnknownGroup(ClosId),
    /// An invalid CAT mask was supplied or encountered.
    Mask(MaskError),
    /// A resctrl file could not be read or written.
    Io {
        /// The path involved.
        path: String,
        /// The underlying I/O error.
        source: io::Error,
    },
    /// A resctrl file had unexpected contents.
    Parse {
        /// The path involved.
        path: String,
        /// What went wrong.
        message: String,
    },
    /// The simulated machine rejected an operation.
    Sim(SimError),
    /// The backend cannot perform the requested operation.
    Unsupported(&'static str),
}

impl fmt::Display for RdtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RdtError::UnknownGroup(c) => write!(f, "unknown resource group {c}"),
            RdtError::Mask(e) => write!(f, "invalid CAT mask: {e}"),
            RdtError::Io { path, source } => write!(f, "I/O error on {path}: {source}"),
            RdtError::Parse { path, message } => write!(f, "cannot parse {path}: {message}"),
            RdtError::Sim(e) => write!(f, "simulator error: {e}"),
            RdtError::Unsupported(what) => write!(f, "unsupported operation: {what}"),
        }
    }
}

impl std::error::Error for RdtError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RdtError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<MaskError> for RdtError {
    fn from(e: MaskError) -> Self {
        RdtError::Mask(e)
    }
}

impl From<SimError> for RdtError {
    fn from(e: SimError) -> Self {
        RdtError::Sim(e)
    }
}
