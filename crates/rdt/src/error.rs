//! Error type shared by all RDT backends.

use std::fmt;
use std::io;

use copart_sim::{ClosId, MaskError, SimError};

/// Errors raised by RDT backends.
#[derive(Debug)]
pub enum RdtError {
    /// The group/CLOS is unknown to the backend.
    UnknownGroup(ClosId),
    /// An invalid CAT mask was supplied or encountered.
    Mask(MaskError),
    /// A resctrl file could not be read or written.
    Io {
        /// The path involved.
        path: String,
        /// The underlying I/O error.
        source: io::Error,
    },
    /// A resctrl file had unexpected contents.
    Parse {
        /// The path involved.
        path: String,
        /// What went wrong.
        message: String,
    },
    /// The simulated machine rejected an operation.
    Sim(SimError),
    /// The backend cannot perform the requested operation.
    Unsupported(&'static str),
    /// A transient, retryable failure: the resource was momentarily
    /// unavailable (an `EBUSY`-style schemata write race with another
    /// tenant, a multiplexed PMC read that returned nothing this
    /// interval). Unlike the other variants, retrying the same call is
    /// expected to succeed once the contention clears.
    Busy(&'static str),
}

impl RdtError {
    /// Whether retrying the failed call is expected to help.
    ///
    /// Only [`RdtError::Busy`] is transient; every other variant reports
    /// a persistent condition (unknown group, invalid mask, parse error)
    /// that an identical retry would hit again.
    pub fn is_transient(&self) -> bool {
        matches!(self, RdtError::Busy(_))
    }
}

impl fmt::Display for RdtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RdtError::UnknownGroup(c) => write!(f, "unknown resource group {c}"),
            RdtError::Mask(e) => write!(f, "invalid CAT mask: {e}"),
            RdtError::Io { path, source } => write!(f, "I/O error on {path}: {source}"),
            RdtError::Parse { path, message } => write!(f, "cannot parse {path}: {message}"),
            RdtError::Sim(e) => write!(f, "simulator error: {e}"),
            RdtError::Unsupported(what) => write!(f, "unsupported operation: {what}"),
            RdtError::Busy(what) => write!(f, "resource busy (transient): {what}"),
        }
    }
}

impl std::error::Error for RdtError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RdtError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<MaskError> for RdtError {
    fn from(e: MaskError) -> Self {
        RdtError::Mask(e)
    }
}

impl From<SimError> for RdtError {
    fn from(e: SimError) -> Self {
        RdtError::Sim(e)
    }
}
