//! A timing decorator for [`RdtBackend`]s.
//!
//! [`TimedBackend`] wraps any backend and records, per operation kind,
//! how many calls were made and how long they took. On the resctrl
//! backend this measures real sysfs write latency (the paper's §6.4
//! overhead discussion); on the simulator it measures model cost. The
//! consolidation runtime's own histograms (`apply_ns`) time whole
//! programming passes; this wrapper attributes the time to individual
//! backend calls instead.

use std::time::{Duration, Instant};

use copart_sim::{CbmMask, ClosId, MbaLevel};
use copart_telemetry::CounterSnapshot;

use crate::backend::{RdtBackend, RdtCapabilities};
use crate::error::RdtError;

/// Call count and latency accumulator for one backend operation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpStats {
    /// Number of calls observed.
    pub calls: u64,
    /// Total time across all calls, in nanoseconds.
    pub total_ns: u64,
    /// Slowest single call, in nanoseconds.
    pub max_ns: u64,
}

impl OpStats {
    fn observe(&mut self, elapsed: Duration) {
        let ns = elapsed.as_nanos() as u64;
        self.calls += 1;
        self.total_ns = self.total_ns.saturating_add(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Mean call latency in nanoseconds (0 when no calls were made).
    pub fn mean_ns(&self) -> f64 {
        if self.calls == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.calls as f64
        }
    }
}

/// Timing statistics for every instrumented backend operation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BackendStats {
    /// `set_cbm` (CAT mask programming) calls.
    pub set_cbm: OpStats,
    /// `set_mba` (MBA level programming) calls.
    pub set_mba: OpStats,
    /// `read_counters` sampling calls.
    pub read_counters: OpStats,
    /// `advance` (platform execution) calls.
    pub advance: OpStats,
}

/// Wraps a backend, timing each mutating or sampling call.
#[derive(Debug)]
pub struct TimedBackend<B: RdtBackend> {
    inner: B,
    stats: BackendStats,
}

impl<B: RdtBackend> TimedBackend<B> {
    /// Wraps `inner` with zeroed statistics.
    pub fn new(inner: B) -> TimedBackend<B> {
        TimedBackend {
            inner,
            stats: BackendStats::default(),
        }
    }

    /// Accumulated per-operation timing statistics.
    pub fn stats(&self) -> &BackendStats {
        &self.stats
    }

    /// Resets all statistics to zero.
    pub fn reset_stats(&mut self) {
        self.stats = BackendStats::default();
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    /// Mutable access to the wrapped backend.
    pub fn inner_mut(&mut self) -> &mut B {
        &mut self.inner
    }

    /// Unwraps, discarding the statistics.
    pub fn into_inner(self) -> B {
        self.inner
    }
}

impl<B: RdtBackend> RdtBackend for TimedBackend<B> {
    fn capabilities(&self) -> RdtCapabilities {
        self.inner.capabilities()
    }

    fn groups(&self) -> Vec<ClosId> {
        self.inner.groups()
    }

    fn set_cbm(&mut self, group: ClosId, mask: CbmMask) -> Result<(), RdtError> {
        let t0 = Instant::now();
        let result = self.inner.set_cbm(group, mask);
        self.stats.set_cbm.observe(t0.elapsed());
        result
    }

    fn set_mba(&mut self, group: ClosId, level: MbaLevel) -> Result<(), RdtError> {
        let t0 = Instant::now();
        let result = self.inner.set_mba(group, level);
        self.stats.set_mba.observe(t0.elapsed());
        result
    }

    fn clos_config(&self, group: ClosId) -> Result<(CbmMask, MbaLevel), RdtError> {
        self.inner.clos_config(group)
    }

    fn read_counters(&mut self, group: ClosId) -> Result<CounterSnapshot, RdtError> {
        let t0 = Instant::now();
        let result = self.inner.read_counters(group);
        self.stats.read_counters.observe(t0.elapsed());
        result
    }

    fn advance(&mut self, period: Duration) -> Result<(), RdtError> {
        let t0 = Instant::now();
        let result = self.inner.advance(period);
        self.stats.advance.observe(t0.elapsed());
        result
    }

    fn now_ns(&self) -> u64 {
        self.inner.now_ns()
    }

    fn read_mbm_total_bytes(&mut self, group: ClosId) -> Result<u64, RdtError> {
        self.inner.read_mbm_total_bytes(group)
    }

    fn read_llc_occupancy_bytes(&mut self, group: ClosId) -> Result<u64, RdtError> {
        self.inner.read_llc_occupancy_bytes(group)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim_backend::SimBackend;
    use copart_sim::trace::AccessPattern;
    use copart_sim::{AppSpec, Machine, MachineConfig};

    #[test]
    fn timed_backend_counts_and_forwards() {
        let cfg = MachineConfig::tiny_test();
        let machine_ways = cfg.llc_ways;
        let mut backend = SimBackend::new(Machine::new(cfg));
        let spec = AppSpec {
            name: "probe".into(),
            cores: 1,
            ipc_peak: 1.0,
            apki: 10.0,
            write_fraction: 0.1,
            mlp: 4.0,
            phases: vec![(1.0, AccessPattern::UniformRandom { bytes: 1 << 20 })],
        };
        let g = backend.add_workload(spec).unwrap();
        let mut timed = TimedBackend::new(backend);

        assert_eq!(timed.stats(), &BackendStats::default());
        let mask = CbmMask::contiguous(0, 4, machine_ways).unwrap();
        timed.set_cbm(g, mask).unwrap();
        timed.set_mba(g, MbaLevel::new(50)).unwrap();
        timed.advance(Duration::from_millis(200)).unwrap();
        timed.read_counters(g).unwrap();
        timed.read_counters(g).unwrap();

        let stats = *timed.stats();
        assert_eq!(stats.set_cbm.calls, 1);
        assert_eq!(stats.set_mba.calls, 1);
        assert_eq!(stats.advance.calls, 1);
        assert_eq!(stats.read_counters.calls, 2);
        assert!(stats.read_counters.total_ns >= stats.read_counters.max_ns);
        assert!(stats.advance.mean_ns() > 0.0);

        // The decorated configuration really reached the inner backend.
        let (cbm, mba) = timed.clos_config(g).unwrap();
        assert_eq!(cbm, mask);
        assert_eq!(mba, MbaLevel::new(50));

        // Errors pass through while still being counted.
        assert!(timed.set_mba(ClosId(999), MbaLevel::MAX).is_err());
        assert_eq!(timed.stats().set_mba.calls, 2);

        timed.reset_stats();
        assert_eq!(timed.stats().set_cbm.calls, 0);
        let _inner: SimBackend = timed.into_inner();
    }
}
