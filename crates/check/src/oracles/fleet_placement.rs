//! Oracle for the fleet admission engine (`copart_fleet::placement_log`).
//!
//! The fleet determinism contract starts here: placement is a pure
//! function of the committed occupancy history, so the same `(nodes,
//! capacity, apps, horizon, seed)` must produce byte-identical decision
//! logs on every run — no clock, no thread count, no allocator noise in
//! the decisions. Each case draws a fleet shape, generates the log
//! twice, and demands equality; it then replays the log line by line
//! against an independent occupancy model and checks the structural
//! invariants the full fleet controller builds on:
//!
//! * occupancy stays within `[0, capacity]` on every node;
//! * a tenant departs only from the node it was placed on, exactly once;
//! * a tenant is deferred only when every node is at capacity;
//! * tenants never end the run both placed and deferred.

use std::collections::HashMap;

use crate::property::{CaseOutcome, Property};
use crate::source::Source;
use copart_fleet::placement_log;

fn placement_case(src: &mut Source) -> CaseOutcome {
    let n_nodes = src.size(1, 8);
    let capacity = src.size(1, 4) as u32;
    let n_apps = src.below(120);
    let horizon = 4 + src.below(40);
    let seed = src.below(1 << 16);
    let witness =
        format!("nodes={n_nodes} capacity={capacity} apps={n_apps} horizon={horizon} seed={seed}");
    let verdict = check_case(n_nodes, capacity, n_apps, horizon, seed);
    CaseOutcome { witness, verdict }
}

fn check_case(
    n_nodes: usize,
    capacity: u32,
    n_apps: u64,
    horizon: u64,
    seed: u64,
) -> Result<(), String> {
    let log = placement_log(n_nodes, capacity, n_apps, horizon, seed);
    let again = placement_log(n_nodes, capacity, n_apps, horizon, seed);
    if log != again {
        let at = log
            .iter()
            .zip(&again)
            .position(|(a, b)| a != b)
            .unwrap_or(log.len().min(again.len()));
        return Err(format!(
            "two identical replays diverge at line {at}: {:?} vs {:?}",
            log.get(at),
            again.get(at)
        ));
    }

    // Independent replay of the decision log.
    let mut occupancy = vec![0u32; n_nodes];
    let mut home: HashMap<u64, usize> = HashMap::new();
    let mut seen_full_fleet_for_defer = true;
    for line in &log {
        let field = |key: &str| -> Result<u64, String> {
            line.split_whitespace()
                .find_map(|part| part.strip_prefix(key))
                .ok_or_else(|| format!("{line:?}: missing {key}"))?
                .split('=')
                .next_back()
                .unwrap_or_default()
                .parse()
                .map_err(|_| format!("{line:?}: bad {key}"))
        };
        let app = field("app=")?;
        if line.contains(" place ") {
            let node = field("node=")? as usize;
            if node >= n_nodes {
                return Err(format!("{line:?}: node out of range"));
            }
            if home.insert(app, node).is_some() {
                return Err(format!("{line:?}: app placed while already placed"));
            }
            occupancy[node] += 1;
            if occupancy[node] > capacity {
                return Err(format!("{line:?}: node over capacity"));
            }
        } else if line.contains(" depart ") {
            let node = field("node=")? as usize;
            match home.remove(&app) {
                Some(h) if h == node => occupancy[node] -= 1,
                Some(h) => return Err(format!("{line:?}: app was placed on node {h}")),
                None => return Err(format!("{line:?}: departure of an unplaced app")),
            }
        } else if line.contains(" defer ") {
            // The engine defers only with every node full. (Departures
            // precede placements within an epoch, so the log order
            // matches the decision order.)
            if occupancy.iter().any(|&o| o < capacity) {
                seen_full_fleet_for_defer = false;
            }
        } else {
            return Err(format!("{line:?}: unknown decision"));
        }
    }
    if !seen_full_fleet_for_defer {
        return Err("a tenant was deferred while a node had room".to_string());
    }
    let placed_now: u32 = occupancy.iter().sum();
    if u64::from(placed_now) != home.len() as u64 {
        return Err(format!(
            "replay bookkeeping disagrees: occupancy {placed_now}, residents {}",
            home.len()
        ));
    }
    Ok(())
}

/// The fleet placement determinism oracle.
pub fn properties() -> Vec<Property> {
    vec![Property::new(
        "fleet-placement-deterministic",
        placement_case,
    )]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_cases_pass() {
        for seed in 0..32 {
            let mut src = Source::from_seed(seed);
            let out = placement_case(&mut src);
            assert_eq!(out.verdict, Ok(()), "seed {seed}: {}", out.witness);
        }
    }

    #[test]
    fn zero_tape_is_the_minimal_quiet_case() {
        let mut src = Source::replay(&[]);
        let out = placement_case(&mut src);
        assert_eq!(out.verdict, Ok(()), "{}", out.witness);
        assert!(out.witness.contains("nodes=1"), "{}", out.witness);
    }
}
