//! Oracles for the trace-format JSON codec (`copart_telemetry::Json`).
//!
//! * `json-roundtrip` — encode→parse→encode is a fixpoint for randomized
//!   values (awkward strings, dyadic and bit-pattern floats, duplicate
//!   object keys), and parse is the exact inverse of encode.
//! * `json-depth-limit` — the recursive-descent parser accepts nesting
//!   up to [`MAX_DEPTH`] and rejects
//!   anything deeper. This is the property that flushed out the
//!   stack-overflow bomb (corpus entry `json-depth-limit-bomb`): before
//!   the limit existed, a hostile trace file of `100_000 × '['` crashed
//!   the process instead of returning a parse error.

use crate::property::{CaseOutcome, Property};
use crate::source::Source;
use copart_telemetry::json::MAX_DEPTH;
use copart_telemetry::Json;

/// Characters chosen to stress the string escaper: quotes, backslashes,
/// control characters, multi-byte UTF-8.
const TRICKY_CHARS: [char; 10] = [
    'a', 'b', '"', '\\', '\n', '\t', '\u{0}', '\u{7f}', 'é', '😀',
];

fn gen_string(src: &mut Source) -> String {
    let len = src.size(0, 6);
    (0..len).map(|_| *src.pick(&TRICKY_CHARS)).collect()
}

fn gen_number(src: &mut Source) -> f64 {
    match src.below(3) {
        // Small integers (including negatives).
        0 => src.size(0, 2_000_000) as f64 - 1_000_000.0,
        // Dyadic fractions: exact in binary, awkward in decimal.
        1 => (src.size(0, 1 << 20) as f64 - (1 << 19) as f64) / (1u64 << src.size(0, 10)) as f64,
        // Arbitrary bit patterns, discarding non-finite ones.
        _ => {
            let x = f64::from_bits(src.draw());
            if x.is_finite() {
                x
            } else {
                0.0
            }
        }
    }
}

fn gen_value(src: &mut Source, depth: usize) -> Json {
    if depth == 0 || src.chance(0.4) {
        match src.below(4) {
            0 => Json::Null,
            1 => Json::Bool(src.chance(0.5)),
            2 => Json::Num(gen_number(src)),
            _ => Json::Str(gen_string(src)),
        }
    } else if src.chance(0.5) {
        let len = src.size(0, 4);
        Json::Arr((0..len).map(|_| gen_value(src, depth - 1)).collect())
    } else {
        let len = src.size(0, 4);
        // Duplicate keys are representable (ordered member list) and must
        // survive the round trip; don't deduplicate.
        Json::Obj(
            (0..len)
                .map(|_| (gen_string(src), gen_value(src, depth - 1)))
                .collect(),
        )
    }
}

fn roundtrip_case(src: &mut Source) -> CaseOutcome {
    let value = gen_value(src, 4);
    let encoded = value.to_string();
    let witness = format!("doc={encoded}");
    let parsed = match Json::parse(&encoded) {
        Ok(v) => v,
        Err(e) => {
            return CaseOutcome {
                witness,
                verdict: Err(format!("own encoding rejected: {e}")),
            }
        }
    };
    if parsed != value {
        return CaseOutcome {
            witness,
            verdict: Err(format!(
                "parse is not the inverse of encode: got {parsed:?}"
            )),
        };
    }
    let re_encoded = parsed.to_string();
    if re_encoded != encoded {
        return CaseOutcome {
            witness,
            verdict: Err(format!(
                "encode→parse→encode not a fixpoint: {encoded:?} vs {re_encoded:?}"
            )),
        };
    }
    CaseOutcome {
        witness,
        verdict: Ok(()),
    }
}

fn depth_limit_case(src: &mut Source) -> CaseOutcome {
    // Straddle the limit densely: depths near MAX_DEPTH are the
    // interesting region, but include shallow and clearly-over cases.
    let depth = src.size(1, MAX_DEPTH + 64);
    let arrays = src.chance(0.5);
    let witness = format!(
        "depth={depth} kind={}",
        if arrays { "arrays" } else { "objects" }
    );
    let doc = if arrays {
        format!("{}0{}", "[".repeat(depth), "]".repeat(depth))
    } else {
        format!("{}0{}", "{\"k\":".repeat(depth), "}".repeat(depth))
    };
    let result = Json::parse(&doc);
    let should_parse = depth <= MAX_DEPTH;
    match (result, should_parse) {
        (Ok(v), true) => {
            // While we're here: the accepted document round-trips.
            let re = v.to_string();
            if Json::parse(&re).as_ref() == Ok(&v) {
                CaseOutcome {
                    witness,
                    verdict: Ok(()),
                }
            } else {
                CaseOutcome {
                    witness,
                    verdict: Err(format!("accepted document does not round-trip: {re:?}")),
                }
            }
        }
        (Err(e), false) => {
            if e.to_string().contains("nested") {
                CaseOutcome {
                    witness,
                    verdict: Ok(()),
                }
            } else {
                CaseOutcome {
                    witness,
                    verdict: Err(format!("rejected for the wrong reason: {e}")),
                }
            }
        }
        (Ok(_), false) => CaseOutcome {
            witness,
            verdict: Err(format!(
                "depth {depth} > MAX_DEPTH {MAX_DEPTH} accepted — unbounded recursion"
            )),
        },
        (Err(e), true) => CaseOutcome {
            witness,
            verdict: Err(format!(
                "depth {depth} ≤ MAX_DEPTH {MAX_DEPTH} rejected: {e}"
            )),
        },
    }
}

/// The JSON codec oracles.
pub fn properties() -> Vec<Property> {
    vec![
        Property::new("json-roundtrip", roundtrip_case),
        Property::new("json-depth-limit", depth_limit_case),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_cases_pass() {
        for seed in 0..64 {
            let mut src = Source::from_seed(seed);
            let out = roundtrip_case(&mut src);
            assert_eq!(
                out.verdict,
                Ok(()),
                "roundtrip seed {seed}: {}",
                out.witness
            );
            let mut src = Source::from_seed(seed ^ 0x1234);
            let out = depth_limit_case(&mut src);
            assert_eq!(out.verdict, Ok(()), "depth seed {seed}: {}", out.witness);
        }
    }
}
