//! Closed-form bounds oracle for the simulated machine's counter
//! accounting (`copart_rdt::SimBackend` over `copart_sim::Machine`).
//!
//! The cycle-free performance model is a roofline fixpoint; its exact
//! outputs are not independently recomputable, but hard physical bounds
//! are, and the monitoring counters must respect them in every window:
//!
//! * instructions advance by at most `cores × freq × ipc_peak × dt`;
//! * each application's memory-traffic delta fits under its MBA cap, and
//!   the sum over all applications fits under the machine's memory
//!   bandwidth;
//! * LLC occupancy never exceeds the cache size;
//! * all counters are monotone, misses never exceed accesses, and
//!   snapshot timestamps equal simulated time;
//! * the backend's CLOS table stays consistent with the machine's
//!   ground truth (`Machine::app_clos`).

use crate::property::{CaseOutcome, Property};
use crate::source::Source;
use copart_rdt::SimBackend;
use copart_sim::trace::AccessPattern;
use copart_sim::{AppSpec, CbmMask, Machine, MachineConfig, MbaLevel};

/// Relative slack for float-accumulated counters compared against the
/// closed-form bounds (the model rounds through `f64` accumulators).
const REL: f64 = 1.0 + 1e-6;

fn gen_spec(src: &mut Source, index: usize) -> AppSpec {
    let footprint = 1u64 << src.size(14, 18);
    let pattern = match src.below(3) {
        0 => AccessPattern::UniformRandom { bytes: footprint },
        1 => AccessPattern::Stream { bytes: footprint },
        _ => AccessPattern::WorkingSetLoop {
            bytes: footprint,
            stride: 64,
        },
    };
    AppSpec {
        name: format!("app{index}"),
        cores: 1,
        ipc_peak: src.f64_in(0.5, 2.0),
        apki: src.f64_in(1.0, 30.0),
        write_fraction: src.f64_in(0.0, 0.3),
        mlp: src.f64_in(1.0, 8.0),
        phases: vec![(1.0, pattern)],
    }
}

fn sim_case(src: &mut Source) -> CaseOutcome {
    let cfg = MachineConfig::tiny_test();
    let total_bw = cfg.mem_bw_bytes_per_sec;
    let llc_bytes = cfg.llc_bytes() as f64;
    let freq = cfg.freq_hz;
    let ways = cfg.llc_ways;

    let mut backend = SimBackend::new(Machine::new(cfg.clone()));
    let napps = src.size(1, 3);
    let mut apps = Vec::new();
    let mut witness_parts = Vec::new();
    for i in 0..napps {
        let spec = gen_spec(src, i);
        let clos = match backend.add_workload(spec.clone()) {
            Ok(c) => c,
            Err(e) => {
                return CaseOutcome {
                    witness: format!("apps=[{}]", witness_parts.join(" ")),
                    verdict: Err(format!("add_workload failed: {e}")),
                }
            }
        };
        // A random contiguous partition slice and MBA level per CLOS.
        let count = src.size(1, ways as usize) as u32;
        let start = src.size(0, (ways - count) as usize) as u32;
        let mask = CbmMask::contiguous(start, count, ways).expect("in-range mask");
        let mba = MbaLevel::new((src.size(1, 10) * 10) as u8);
        let machine = backend.machine_mut();
        machine.set_cbm(clos, mask).expect("valid mask");
        machine.set_mba(clos, mba);
        witness_parts.push(format!(
            "(name={} ipc={:.3} apki={:.2} wf={:.2} mlp={:.2} mask={start}+{count} mba={})",
            spec.name,
            spec.ipc_peak,
            spec.apki,
            spec.write_fraction,
            spec.mlp,
            mba.percent()
        ));
        apps.push((clos, spec, mba));
    }
    let windows = src.size(2, 4);
    let window_ns: u64 = 20_000_000;
    let dt = window_ns as f64 / 1e9;
    let witness = format!("apps=[{}] windows={windows}", witness_parts.join(" "));

    let fail = |msg: String| CaseOutcome {
        witness: witness.clone(),
        verdict: Err(msg),
    };

    let mut prev: Vec<_> = Vec::new();
    for (clos, _, _) in &apps {
        let app = backend.app_of(*clos).expect("app registered");
        let snap = backend.machine().counters(app).expect("live app");
        let mbm = backend.machine().mbm_total_bytes(app).expect("live app");
        prev.push((app, snap, mbm));
    }

    for w in 0..windows {
        backend.machine_mut().tick(window_ns);
        let now = backend.machine().now_ns();
        let mut traffic_sum = 0.0;
        for (k, (clos, spec, mba)) in apps.iter().enumerate() {
            let (app, prev_snap, prev_mbm) = prev[k];
            // Backend group table vs machine ground truth.
            match backend.machine().app_clos(app) {
                Ok(c) if c == *clos => {}
                other => {
                    return fail(format!(
                        "window {w}: CLOS table diverged for {}: backend says {clos:?}, \
                         machine says {other:?}",
                        spec.name
                    ))
                }
            }
            let snap = backend.machine().counters(app).expect("live app");
            let mbm = backend.machine().mbm_total_bytes(app).expect("live app");
            if snap.timestamp_ns != now {
                return fail(format!(
                    "window {w}: {} timestamp {} != simulated time {now}",
                    spec.name, snap.timestamp_ns
                ));
            }
            if snap.instructions < prev_snap.instructions
                || snap.cycles < prev_snap.cycles
                || snap.llc_accesses < prev_snap.llc_accesses
                || snap.llc_misses < prev_snap.llc_misses
                || mbm < prev_mbm
            {
                return fail(format!(
                    "window {w}: {} counters went backwards: {prev_snap:?} → {snap:?}",
                    spec.name
                ));
            }
            if snap.llc_misses > snap.llc_accesses {
                return fail(format!(
                    "window {w}: {} misses {} exceed accesses {}",
                    spec.name, snap.llc_misses, snap.llc_accesses
                ));
            }
            let d_instr = (snap.instructions - prev_snap.instructions) as f64;
            let peak = f64::from(spec.cores) * freq * spec.ipc_peak * dt;
            if d_instr > peak * REL + 1.0 {
                return fail(format!(
                    "window {w}: {} retired {d_instr} instructions, roofline peak is {peak}",
                    spec.name
                ));
            }
            let d_traffic = (mbm - prev_mbm) as f64;
            let cap = cfg.mba_bandwidth_cap(spec.cores, *mba) * dt;
            if d_traffic > cap * REL + 64.0 {
                return fail(format!(
                    "window {w}: {} moved {d_traffic} bytes, MBA cap allows {cap}",
                    spec.name
                ));
            }
            traffic_sum += d_traffic;
            let occupancy = backend
                .machine()
                .llc_occupancy_bytes(app)
                .expect("live app") as f64;
            if occupancy > llc_bytes {
                return fail(format!(
                    "window {w}: {} occupies {occupancy} bytes of a {llc_bytes}-byte LLC",
                    spec.name
                ));
            }
            prev[k] = (app, snap, mbm);
        }
        let bus = total_bw * dt;
        if traffic_sum > bus * REL + 64.0 {
            return fail(format!(
                "window {w}: total traffic {traffic_sum} exceeds the {bus}-byte bus budget"
            ));
        }
    }
    CaseOutcome {
        witness,
        verdict: Ok(()),
    }
}

/// The simulator counter-accounting oracle.
pub fn properties() -> Vec<Property> {
    vec![Property::new("sim-counter-bounds", sim_case)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_cases_pass() {
        for seed in 0..24 {
            let mut src = Source::from_seed(seed);
            let out = sim_case(&mut src);
            assert_eq!(out.verdict, Ok(()), "seed {seed}: {}", out.witness);
        }
    }
}
