//! The workspace's differential oracles, one module per subsystem.

pub mod cluster;
pub mod ewma;
pub mod fleet_placement;
pub mod fsm;
pub mod incremental;
pub mod json;
pub mod matching;
pub mod persistence;
pub mod schemata;
pub mod sim_counters;

use crate::property::Property;

/// Every registered oracle, in report order. The `copart-check` binary
/// and the top-level suite test both run exactly this list, so a new
/// oracle registered here is automatically fuzzed, replayed against the
/// corpus, and covered by the jobs-determinism gate.
pub fn all() -> Vec<Property> {
    let mut props = Vec::new();
    props.extend(matching::properties());
    props.extend(incremental::properties());
    props.extend(schemata::properties());
    props.extend(json::properties());
    props.extend(fsm::properties());
    props.extend(sim_counters::properties());
    props.extend(ewma::properties());
    props.extend(persistence::properties());
    props.extend(fleet_placement::properties());
    props.extend(cluster::properties());
    props
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn oracle_names_are_unique_and_stable() {
        let props = all();
        let names: BTreeSet<&str> = props.iter().map(|p| p.name()).collect();
        assert_eq!(names.len(), props.len(), "duplicate property names");
        // Renaming a property orphans its corpus entries; this list is
        // the rename tripwire.
        let expected: BTreeSet<&str> = [
            "matching-allocate-stable",
            "matching-incremental-vs-rebuild",
            "schemata-roundtrip",
            "schemata-validation",
            "json-roundtrip",
            "json-depth-limit",
            "fsm-dual-vs-table",
            "sim-counter-bounds",
            "ewma-reference",
            "snapshot-restore-replay",
            "fleet-placement-deterministic",
            "cluster-assignment-deterministic",
        ]
        .into_iter()
        .collect();
        assert_eq!(names, expected);
    }
}
