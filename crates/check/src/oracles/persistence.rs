//! Snapshot → restore → replay oracle for the crash-safe state layer
//! (`copart-persist` plus the serve-side recovery seams).
//!
//! The crash-recovery contract (DESIGN.md §16) is that a snapshot is a
//! *complete* freeze of the dynamic state: restore it into a freshly
//! built runtime and the continuation is byte-identical to the run that
//! was never interrupted — same trace lines, same RNG draws, same
//! controller state. `tests/crash_recovery.rs` proves that end-to-end
//! for a handful of pinned scenarios; this oracle fuzzes the *mechanism*
//! across randomized mixes, policies, seeds, snapshot points, and fault
//! plans, and adds the wire check the integration test skips: the
//! snapshot document must survive an encode → render → parse → decode
//! round trip unchanged (the hex-float codec is where bit-exactness
//! goes to die).
//!
//! Each case runs one live runtime to a random epoch, captures a
//! [`SnapshotDoc`], round-trips it through its JSON rendering, restores
//! the decoded document into a second runtime built through the normal
//! construction path (disarmed, for fault-injected runs — exactly what
//! `copart_serve::persist::recover_faulty` does), then steps both
//! runtimes the same number of epochs and demands identical per-epoch
//! outcomes, identical trace bytes, and identical re-captured state.

use crate::property::{CaseOutcome, Property};
use crate::source::Source;
use copart_core::policies::PolicyKind;
use copart_core::runtime::ConsolidationRuntime;
use copart_faults::{FaultPlan, FaultTrigger, FaultyBackend};
use copart_persist::{MetricsFrozen, PersistableBackend, SnapshotDoc, SnapshotMeta};
use copart_rdt::SimBackend;
use copart_serve::scenario::profile_with_retries;
use copart_serve::{Scenario, SharedRing, PROFILE_ATTEMPTS};
use copart_sim::Machine;
use copart_telemetry::Json;
use copart_workloads::MixKind;

/// Mixes the oracle draws from, simplest-shrinking first.
const MIXES: [MixKind; 5] = [
    MixKind::HighBoth,
    MixKind::ModerateBoth,
    MixKind::HighLlc,
    MixKind::HighBw,
    MixKind::Insensitive,
];

const POLICIES: [PolicyKind; 3] = [PolicyKind::CoPart, PolicyKind::CatOnly, PolicyKind::MbaOnly];

/// A randomized fault trigger for one site. `Never` first: a zeroed
/// tape shrinks every site to quiet.
fn gen_trigger(src: &mut Source) -> FaultTrigger {
    src.pick(&[
        FaultTrigger::Never,
        FaultTrigger::Prob { p: 0.05 },
        FaultTrigger::Prob { p: 0.25 },
        FaultTrigger::Every { n: 3 },
    ])
    .clone()
}

/// A randomized fault plan. The vanish site stays `Never`: vanishes are
/// non-transient CLOS churn, and this oracle holds the group table
/// fixed so the continuation comparison is about *state*, not about
/// both sides failing construction the same way.
fn gen_plan(src: &mut Source) -> FaultPlan {
    FaultPlan {
        seed: src.below(256),
        counter_dropout: gen_trigger(src),
        write_cbm: gen_trigger(src),
        write_mba: gen_trigger(src),
        vanish: FaultTrigger::Never,
        clock_stall: gen_trigger(src),
    }
}

fn snapshot_case(src: &mut Source) -> CaseOutcome {
    let mix = *src.pick(&MIXES);
    let policy = *src.pick(&POLICIES);
    let n_apps = src.size(2, 3);
    let seed = src.below(1 << 12);
    // Epochs run before the snapshot is cut, and after it (the
    // replayed continuation both sides are compared over).
    let before = src.below(4);
    let after = src.size(1, 3) as u64;
    let faults = if src.chance(0.6) {
        None
    } else {
        Some(gen_plan(src))
    };
    // High seed bits, drawn *last* so pre-existing corpus tapes (which
    // pad exhausted replays with 0) still decode to their blessed
    // witnesses. A non-zero draw pushes the scenario seed at or beyond
    // 2⁵³ — the range the version-2 hex codec exists for.
    let seed = seed | (src.below(1 << 11) << 53);
    let witness = format!(
        "mix={} policy={} apps={n_apps} seed={seed} before={before} after={after} faults={faults:?}",
        mix.label(),
        policy.label()
    );
    let verdict = check_case(mix, policy, n_apps, seed, before, after, faults);
    CaseOutcome { witness, verdict }
}

fn check_case(
    mix: MixKind,
    policy: PolicyKind,
    n_apps: usize,
    seed: u64,
    before: u64,
    after: u64,
    faults: Option<FaultPlan>,
) -> Result<(), String> {
    let scenario = Scenario::new(mix, n_apps, policy, seed, faults.clone())
        .map_err(|e| format!("scenario rejected: {e}"))?;
    let env = scenario.env();
    let meta = SnapshotMeta {
        mix: env.identity.mix.clone(),
        n_apps: n_apps as u64,
        policy: policy.label().to_string(),
        seed,
        faults: env.identity.faults.clone(),
        daemon_epochs: before,
    };
    match faults {
        None => {
            let live = scenario
                .build_sim(&env)
                .map_err(|e| format!("build: {e}"))?;
            run_pair(live, 1, before, after, meta, |doc| {
                let mut resumed = scenario.build_sim(&env)?;
                resumed
                    .backend_mut()
                    .restore_from(&doc.backend)
                    .map_err(|e| format!("backend restore: {e}"))?;
                resumed.restore_snapshot(&doc.runtime);
                Ok(resumed)
            })
        }
        Some(plan) => {
            let live = scenario
                .build_faulty(&env, plan.clone())
                .map_err(|e| format!("build: {e}"))?;
            run_pair(live, PROFILE_ATTEMPTS, before, after, meta, |doc| {
                // The recovery construction path: rebuild with the
                // fault decorator disarmed so construction consumes no
                // fault-stream draws, restore, then re-arm.
                let mut backend = SimBackend::new(Machine::new(env.machine.clone()));
                let named: Vec<_> = scenario
                    .specs(&env)
                    .into_iter()
                    .map(|spec| {
                        let name = spec.name.clone();
                        backend
                            .add_workload(spec)
                            .map(|group| (group, name))
                            .map_err(|e| format!("re-admit: {e}"))
                    })
                    .collect::<Result<_, _>>()?;
                let mut faulty = FaultyBackend::new(backend, plan.clone());
                faulty.set_armed(false);
                let cfg = env.runtime_config(n_apps, policy);
                let mut resumed = ConsolidationRuntime::new(faulty, named, cfg)
                    .map_err(|e| format!("disarmed construction: {e}"))?;
                resumed
                    .backend_mut()
                    .restore_from(&doc.backend)
                    .map_err(|e| format!("backend restore: {e}"))?;
                resumed.restore_snapshot(&doc.runtime);
                resumed.backend_mut().set_armed(true);
                Ok(resumed)
            })
        }
    }
}

/// Drives the live runtime to the snapshot point, round-trips the
/// document through its wire rendering, restores via `restore`, then
/// compares the two continuations epoch by epoch.
fn run_pair<B, F>(
    mut live: ConsolidationRuntime<B>,
    attempts: u32,
    before: u64,
    after: u64,
    meta: SnapshotMeta,
    restore: F,
) -> Result<(), String>
where
    B: PersistableBackend,
    F: FnOnce(&SnapshotDoc) -> Result<ConsolidationRuntime<B>, String>,
{
    profile_with_retries(&mut live, attempts)?;
    for _ in 0..before {
        // Epoch failures (degraded-mode busy writes) are part of the
        // state being snapshotted, not a case failure.
        let _ = live.run_period();
    }

    let doc = SnapshotDoc {
        meta,
        runtime: live.snapshot(),
        backend: live.backend().capture(),
        metrics: MetricsFrozen::capture(&live.metrics_snapshot()),
    };
    let rendered = doc.encode().to_string();
    let parsed =
        Json::parse(&rendered).map_err(|e| format!("snapshot rendering does not re-parse: {e}"))?;
    let decoded =
        SnapshotDoc::decode(&parsed).map_err(|e| format!("snapshot does not decode: {e}"))?;
    let (doc_dbg, decoded_dbg) = (format!("{doc:?}"), format!("{decoded:?}"));
    if doc_dbg != decoded_dbg {
        return Err(format!(
            "decode(parse(render(encode(doc)))) is not the identity:\n  captured: {}\n  decoded:  {}",
            first_difference(&doc_dbg, &decoded_dbg),
            first_difference(&decoded_dbg, &doc_dbg),
        ));
    }

    let mut resumed = restore(&decoded)?;

    let (ring_live, ring_resumed) = (SharedRing::new(256), SharedRing::new(256));
    live.set_recorder(Box::new(ring_live.clone()));
    resumed.set_recorder(Box::new(ring_resumed.clone()));
    for step in 0..after {
        let a = live.run_period().map(|_| ()).map_err(|e| e.to_string());
        let b = resumed.run_period().map(|_| ()).map_err(|e| e.to_string());
        if a != b {
            return Err(format!(
                "continuation epoch {step} diverged: live {a:?} vs resumed {b:?}"
            ));
        }
    }

    let lines = |ring: &SharedRing| -> Vec<String> {
        ring.all().iter().map(|e| e.to_json_line()).collect()
    };
    let (trace_live, trace_resumed) = (lines(&ring_live), lines(&ring_resumed));
    if trace_live != trace_resumed {
        let step = trace_live
            .iter()
            .zip(&trace_resumed)
            .position(|(a, b)| a != b)
            .unwrap_or(trace_live.len().min(trace_resumed.len()));
        return Err(format!(
            "continuation traces diverge at line {step}:\n  live:    {}\n  resumed: {}",
            trace_live.get(step).map_or("<missing>", |s| s.as_str()),
            trace_resumed.get(step).map_or("<missing>", |s| s.as_str()),
        ));
    }

    let (state_live, state_resumed) = (
        format!("{:?} {:?}", live.snapshot(), live.backend().capture()),
        format!("{:?} {:?}", resumed.snapshot(), resumed.backend().capture()),
    );
    if state_live != state_resumed {
        return Err(format!(
            "re-captured states diverge after the continuation:\n  live:    {}\n  resumed: {}",
            first_difference(&state_live, &state_resumed),
            first_difference(&state_resumed, &state_live),
        ));
    }
    Ok(())
}

/// A short window of `a` around its first byte of disagreement with
/// `b` — full runtime Debug dumps are thousands of characters.
fn first_difference<'a>(a: &'a str, b: &str) -> &'a str {
    let at = a
        .bytes()
        .zip(b.bytes())
        .position(|(x, y)| x != y)
        .unwrap_or(a.len().min(b.len()));
    let start = at.saturating_sub(40);
    let end = (at + 80).min(a.len());
    // Debug output is ASCII; byte slicing cannot split a char.
    &a[start..end]
}

/// The snapshot → restore → replay oracle.
pub fn properties() -> Vec<Property> {
    vec![Property::new("snapshot-restore-replay", snapshot_case)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_cases_pass() {
        for seed in 0..8 {
            let mut src = Source::from_seed(seed);
            let out = snapshot_case(&mut src);
            assert_eq!(out.verdict, Ok(()), "seed {seed}: {}", out.witness);
        }
    }

    #[test]
    fn zero_tape_is_the_minimal_clean_case() {
        let mut src = Source::replay(&[]);
        let out = snapshot_case(&mut src);
        assert_eq!(out.verdict, Ok(()), "{}", out.witness);
        assert!(out.witness.contains("faults=None"), "{}", out.witness);
        assert!(out.witness.contains("apps=2"), "{}", out.witness);
    }
}
