//! Differential oracle for the incremental Algorithm 2 step.
//!
//! `get_next_system_state_into` keeps a role cache and scratch buffers
//! alive across epochs and recomputes only the applications whose
//! role key changed; `get_next_system_state` rebuilds the matching
//! instance from scratch every call. The two must be *byte-identical* —
//! same proposal, same per-app events, same round count, and the same
//! RNG draw sequence — on every epoch of a chained run, under churned
//! classifications, partial management, and converged steady states.
//! A divergence here means the cache invalidation is wrong, which the
//! planner's `plan_into` fast path would silently inherit.

use copart_core::fsm::AppState;
use copart_core::next_state::{
    get_next_system_state, get_next_system_state_into, AppClassification, AppliedEvents,
    ExploreScratch,
};
use copart_core::state::{SystemState, WaysBudget};
use copart_rdt::MbaLevel;
use copart_rng::XorShift64Star;

use crate::property::{CaseOutcome, Property};
use crate::source::Source;

fn gen_class(src: &mut Source) -> AppClassification {
    let states = [AppState::Supply, AppState::Maintain, AppState::Demand];
    AppClassification {
        llc: *src.pick(&states),
        mba: *src.pick(&states),
        slowdown: 1.0 + src.f64_in(0.0, 3.0),
    }
}

/// The property behind `matching-incremental-vs-rebuild`: a chained
/// multi-epoch run where the incremental step (persistent scratch +
/// role cache) must stay byte-identical to the from-scratch rebuild.
pub fn incremental_case(src: &mut Source) -> CaseOutcome {
    let n = src.size(1, 7);
    let budget = WaysBudget {
        first_way: 0,
        total_ways: src.size(n, 12) as u32,
        mba_cap: MbaLevel::MAX,
    };
    // `true` is the simpler (and more interesting) branch under shrinking.
    let manage_llc = src.chance(0.85);
    let manage_mba = src.chance(0.85);
    let epochs = src.size(1, 6);
    let seed = src.draw();
    let start_mba = MbaLevel::new(src.size(1, 10) as u8 * 10);

    let mut apps: Vec<AppClassification> = (0..n).map(|_| gen_class(src)).collect();
    let mut current = SystemState::equal_split(n, &budget, start_mba);

    let witness = format!(
        "n={n} ways={} llc={manage_llc} mba={manage_mba} epochs={epochs} \
         seed={seed:#x} start_mba={} apps={apps:?}",
        budget.total_ways,
        start_mba.percent(),
    );

    // Two identically seeded generators: the incremental step promises
    // the exact draw sequence of the reference, so the streams must stay
    // in lockstep across the whole chained run.
    let mut rng_inc = XorShift64Star::seed_from_u64(seed);
    let mut rng_ref = XorShift64Star::seed_from_u64(seed);
    let mut scratch = ExploreScratch::default();
    let mut proposal = SystemState::default();
    let mut events: Vec<AppliedEvents> = Vec::new();

    for epoch in 0..epochs {
        if epoch > 0 {
            for app in &mut apps {
                if src.chance(0.3) {
                    *app = gen_class(src);
                }
            }
        }
        let stats = get_next_system_state_into(
            &current,
            &apps,
            &budget,
            &mut rng_inc,
            manage_llc,
            manage_mba,
            &mut scratch,
            &mut proposal,
            &mut events,
        );
        let reference = get_next_system_state(
            &current,
            &apps,
            &budget,
            &mut rng_ref,
            manage_llc,
            manage_mba,
        );
        if proposal != reference.state {
            return CaseOutcome {
                witness,
                verdict: Err(format!(
                    "epoch {epoch}: state diverged: incremental {proposal:?} \
                     != rebuild {:?}",
                    reference.state
                )),
            };
        }
        if events != reference.events {
            return CaseOutcome {
                witness,
                verdict: Err(format!(
                    "epoch {epoch}: events diverged: incremental {events:?} \
                     != rebuild {:?}",
                    reference.events
                )),
            };
        }
        if stats.changed != reference.changed || stats.matching_rounds != reference.matching_rounds
        {
            return CaseOutcome {
                witness,
                verdict: Err(format!(
                    "epoch {epoch}: stats diverged: incremental {stats:?} != rebuild \
                     (changed={}, rounds={})",
                    reference.changed, reference.matching_rounds
                )),
            };
        }
        if rng_inc != rng_ref {
            return CaseOutcome {
                witness,
                verdict: Err(format!(
                    "epoch {epoch}: RNG streams desynchronized (draw counts differ)"
                )),
            };
        }
        // Chain: the accepted proposal becomes the next epoch's input, so
        // the role cache sees realistic unit-transfer trajectories.
        current.allocs.clone_from(&proposal.allocs);
    }
    CaseOutcome {
        witness,
        verdict: Ok(()),
    }
}

/// The incremental-matching oracles.
pub fn properties() -> Vec<Property> {
    vec![Property::new(
        "matching-incremental-vs-rebuild",
        incremental_case,
    )]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_cases_pass() {
        for seed in 0..64 {
            let mut src = Source::from_seed(seed);
            let out = incremental_case(&mut src);
            assert_eq!(out.verdict, Ok(()), "seed {seed}: {}", out.witness);
        }
    }
}
