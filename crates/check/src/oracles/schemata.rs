//! Oracles for the resctrl `schemata` kernel-format codec
//! (`copart_rdt::Schemata`).
//!
//! Two properties:
//!
//! * `schemata-roundtrip` — a randomized *valid* document (shuffled
//!   domain order, stray whitespace, unmanaged resources, CDP spellings)
//!   parses; re-rendering reaches a fixpoint after one normalization;
//!   and the parsed tables match an independently tracked model of what
//!   the document said.
//! * `schemata-validation` — a document with one planted defect (MB
//!   level 0 or > 100, a duplicated domain, an over-wide or empty mask)
//!   is rejected, and the pristine variant of the same document is
//!   accepted. This is the property that flushed out the
//!   accept-anything parser (corpus entries `schemata-mb-over-100` and
//!   `schemata-duplicate-domain`).

use crate::property::{CaseOutcome, Property};
use crate::source::Source;
use copart_rdt::resctrl::Schemata;
use std::collections::BTreeMap;

/// The cbm_len the width oracle checks against (the Xeon Gold 6130
/// testbed's 11 ways).
const CBM_LEN: u32 = 11;

/// One generated document plus the model of what it should parse to.
struct Doc {
    text: String,
    l3: BTreeMap<u32, u32>,
    mb: BTreeMap<u32, u8>,
}

/// A valid document: L3 (plain or CDP split) and MB lines over distinct
/// domains in shuffled order, optional unmanaged-resource line, random
/// spacing.
fn gen_valid_doc(src: &mut Source) -> Doc {
    let ndom = src.size(1, 3);
    let mut l3 = BTreeMap::new();
    let mut mb = BTreeMap::new();
    let mut doms: Vec<u32> = (0..ndom as u32).collect();
    // Shuffled emission order exercises the BTreeMap normalization.
    for i in (1..doms.len()).rev() {
        let j = src.below(i as u64 + 1) as usize;
        doms.swap(i, j);
    }
    let cdp = src.chance(0.25);
    let sep = if src.chance(0.5) { " " } else { "" };
    let mut text = String::new();
    if src.chance(0.2) {
        text.push_str("L2:0=ff\n"); // Unmanaged resource: ignored.
    }
    let l3_resource = if cdp { "L3CODE" } else { "L3" };
    let parts: Vec<String> = doms
        .iter()
        .map(|&d| {
            let bits = 1 + src.below(u64::from((1u32 << CBM_LEN) - 1)) as u32;
            l3.insert(d, bits);
            format!("{d}={bits:x}")
        })
        .collect();
    text.push_str(&format!(
        "{l3_resource}:{}\n",
        parts.join(&format!(";{sep}"))
    ));
    if cdp {
        // The DATA half re-lists the same domains: legal (a distinct
        // resource), and each entry overwrites the CODE mask in the
        // single `l3` table, last-win by design for CDP.
        let parts: Vec<String> = doms
            .iter()
            .map(|&d| {
                let bits = 1 + src.below(u64::from((1u32 << CBM_LEN) - 1)) as u32;
                l3.insert(d, bits);
                format!("{d}={bits:x}")
            })
            .collect();
        text.push_str(&format!("L3DATA:{}\n", parts.join(";")));
    }
    let parts: Vec<String> = doms
        .iter()
        .map(|&d| {
            let pct = src.size(1, 100) as u8;
            mb.insert(d, pct);
            format!("{sep}{d}={pct}")
        })
        .collect();
    text.push_str(&format!("MB:{}\n", parts.join(";")));
    Doc { text, l3, mb }
}

fn roundtrip_case(src: &mut Source) -> CaseOutcome {
    let doc = gen_valid_doc(src);
    let witness = format!("doc={:?}", doc.text);
    let parsed = match Schemata::parse(&doc.text) {
        Ok(s) => s,
        Err(e) => {
            return CaseOutcome {
                witness,
                verdict: Err(format!("valid document rejected: {e}")),
            }
        }
    };
    if parsed.l3 != doc.l3 || parsed.mb != doc.mb {
        return CaseOutcome {
            witness,
            verdict: Err(format!(
                "parse disagrees with the model: got l3={:?} mb={:?}, want l3={:?} mb={:?}",
                parsed.l3, parsed.mb, doc.l3, doc.mb
            )),
        };
    }
    if let Err(e) = parsed.check_l3_width(CBM_LEN) {
        return CaseOutcome {
            witness,
            verdict: Err(format!("in-range mask rejected by width check: {e}")),
        };
    }
    // render∘parse is a fixpoint after one normalization pass.
    let rendered = parsed.render();
    match Schemata::parse(&rendered) {
        Ok(again) if again == parsed && again.render() == rendered => CaseOutcome {
            witness,
            verdict: Ok(()),
        },
        Ok(again) => CaseOutcome {
            witness,
            verdict: Err(format!(
                "render/parse not a fixpoint: {rendered:?} re-parsed as {again:?}"
            )),
        },
        Err(e) => CaseOutcome {
            witness,
            verdict: Err(format!("rendered form {rendered:?} rejected: {e}")),
        },
    }
}

/// The defect classes `schemata-validation` plants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Defect {
    MbZero,
    MbOver100,
    DuplicateDomainSameLine,
    DuplicateDomainCrossLine,
    OverWideMask,
    EmptyMask,
}

const DEFECTS: [Defect; 6] = [
    Defect::MbZero,
    Defect::MbOver100,
    Defect::DuplicateDomainSameLine,
    Defect::DuplicateDomainCrossLine,
    Defect::OverWideMask,
    Defect::EmptyMask,
];

fn validation_case(src: &mut Source) -> CaseOutcome {
    let defect = *src.pick(&DEFECTS);
    let dom = src.below(3) as u32;
    let good_bits = 1 + src.below(u64::from((1u32 << CBM_LEN) - 1)) as u32;
    let good_pct = src.size(1, 100) as u8;
    let (pristine, broken) = match defect {
        Defect::MbZero => (
            format!("L3:{dom}={good_bits:x}\nMB:{dom}={good_pct}\n"),
            format!("L3:{dom}={good_bits:x}\nMB:{dom}=0\n"),
        ),
        Defect::MbOver100 => {
            let pct = src.size(101, 255);
            (
                format!("MB:{dom}={good_pct}\n"),
                format!("MB:{dom}={pct}\n"),
            )
        }
        Defect::DuplicateDomainSameLine => {
            let dup_mb = src.chance(0.5);
            if dup_mb {
                (
                    format!("MB:{dom}={good_pct}\n"),
                    format!("MB:{dom}={good_pct};{dom}={good_pct}\n"),
                )
            } else {
                (
                    format!("L3:{dom}={good_bits:x}\n"),
                    format!("L3:{dom}={good_bits:x};{dom}={good_bits:x}\n"),
                )
            }
        }
        Defect::DuplicateDomainCrossLine => (
            format!("L3:{dom}={good_bits:x}\nMB:{dom}={good_pct}\n"),
            format!("L3:{dom}={good_bits:x}\nMB:{dom}={good_pct}\nL3:{dom}={good_bits:x}\n"),
        ),
        Defect::OverWideMask => {
            let wide = (1u32 << CBM_LEN) | good_bits;
            (
                format!("L3:{dom}={good_bits:x}\n"),
                format!("L3:{dom}={wide:x}\n"),
            )
        }
        Defect::EmptyMask => (format!("L3:{dom}={good_bits:x}\n"), format!("L3:{dom}=0\n")),
    };
    let witness = format!("defect={defect:?} pristine={pristine:?} broken={broken:?}");

    // The pristine twin must pass parse + width check…
    let accepted = Schemata::parse(&pristine).and_then(|s| s.check_l3_width(CBM_LEN).map(|_| s));
    if let Err(e) = accepted {
        return CaseOutcome {
            witness,
            verdict: Err(format!("pristine document rejected: {e}")),
        };
    }
    // …and the broken twin must be rejected by the same pipeline.
    let rejected = Schemata::parse(&broken).and_then(|s| s.check_l3_width(CBM_LEN).map(|_| s));
    match rejected {
        Err(_) => CaseOutcome {
            witness,
            verdict: Ok(()),
        },
        Ok(s) => CaseOutcome {
            witness,
            verdict: Err(format!("defective document accepted as {s:?}")),
        },
    }
}

/// The schemata codec oracles.
pub fn properties() -> Vec<Property> {
    vec![
        Property::new("schemata-roundtrip", roundtrip_case),
        Property::new("schemata-validation", validation_case),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_cases_pass() {
        for seed in 0..64 {
            let mut src = Source::from_seed(seed);
            let out = roundtrip_case(&mut src);
            assert_eq!(
                out.verdict,
                Ok(()),
                "roundtrip seed {seed}: {}",
                out.witness
            );
            let mut src = Source::from_seed(seed ^ 0x5A5A);
            let out = validation_case(&mut src);
            assert_eq!(
                out.verdict,
                Ok(()),
                "validation seed {seed}: {}",
                out.witness
            );
        }
    }
}
