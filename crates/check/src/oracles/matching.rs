//! Differential oracles for the Algorithm 2 allocator
//! (`copart_matching::chain::allocate`).
//!
//! Two independent references check every generated instance:
//!
//! * a brute-force stability checker written directly over the chaining
//!   inputs (capacities + consumers) — it shares *no code* with
//!   `Matching::blocking_pairs`, so a bug in the instance translation
//!   cannot hide itself;
//! * the deferred-acceptance solver on the induced Hospitals/Residents
//!   instance — the paper's claim that instability chaining lands on the
//!   resident-optimal stable matching, including the tie-break order
//!   (priority descending, then index ascending).

use crate::property::{CaseOutcome, Property};
use crate::source::Source;
use copart_matching::chain::{allocate, induced_instance, Consumer};
use copart_matching::{solve_resident_optimal, Matching};

/// Generates a small chaining instance. Priorities are small integers so
/// ties are common — the tie-break order is exactly where the two
/// algorithms could silently diverge.
fn gen_instance(src: &mut Source) -> (Vec<usize>, Vec<Consumer>) {
    let ncat = src.size(1, 4);
    let capacities: Vec<usize> = (0..ncat).map(|_| src.size(0, 3)).collect();
    let nconsumers = src.size(0, 7);
    let consumers: Vec<Consumer> = (0..nconsumers)
        .map(|_| {
            let priority = src.size(0, 5) as f64;
            // A uniformly chosen prefix of a uniformly chosen permutation:
            // duplicate-free, possibly empty, possibly partial.
            let mut cats: Vec<usize> = (0..ncat).collect();
            for i in (1..cats.len()).rev() {
                let j = src.below(i as u64 + 1) as usize;
                cats.swap(i, j);
            }
            let nprefs = src.size(0, ncat);
            cats.truncate(nprefs);
            Consumer {
                priority,
                preference: cats,
            }
        })
        .collect();
    (capacities, consumers)
}

fn witness(capacities: &[usize], consumers: &[Consumer]) -> String {
    let cs: Vec<String> = consumers
        .iter()
        .map(|c| format!("(p={} prefs={:?})", c.priority, c.preference))
        .collect();
    format!("caps={capacities:?} consumers=[{}]", cs.join(" "))
}

/// `i` outranks `j` in every category's eyes: higher priority, lower
/// index on ties (the paper's deterministic tie-break).
fn outranks(consumers: &[Consumer], i: usize, j: usize) -> bool {
    consumers[i].priority > consumers[j].priority
        || (consumers[i].priority == consumers[j].priority && i < j)
}

/// Brute-force blocking-pair search over the raw chaining inputs.
fn blocking_pair(
    capacities: &[usize],
    consumers: &[Consumer],
    assignment: &[Option<usize>],
) -> Option<(usize, usize)> {
    for (i, cons) in consumers.iter().enumerate() {
        let assigned_rank = assignment[i].map(|cat| {
            cons.preference
                .iter()
                .position(|&c| c == cat)
                .expect("assignment must come from the preference list")
        });
        let envy_limit = assigned_rank.unwrap_or(cons.preference.len());
        for &cat in &cons.preference[..envy_limit] {
            if capacities[cat] == 0 {
                continue;
            }
            let holders: Vec<usize> = (0..consumers.len())
                .filter(|&j| assignment[j] == Some(cat))
                .collect();
            if holders.len() < capacities[cat] {
                return Some((i, cat)); // A free slot `i` prefers.
            }
            if holders.iter().any(|&j| outranks(consumers, i, j)) {
                return Some((i, cat)); // `i` beats a current holder.
            }
        }
    }
    None
}

/// The property behind `matching-allocate-stable` and the corpus-seeded
/// equivalence test in `copart-matching` — public so that test can call
/// it on blessed tapes directly.
pub fn allocate_case(src: &mut Source) -> CaseOutcome {
    let (capacities, consumers) = gen_instance(src);
    let witness = witness(&capacities, &consumers);
    let alloc = allocate(&capacities, &consumers);

    // Feasibility: grants respect capacities and preference lists.
    for (c, &cap) in capacities.iter().enumerate() {
        let granted = alloc.granted(c).len();
        if granted > cap {
            return CaseOutcome {
                witness,
                verdict: Err(format!("category {c} over capacity: {granted} > {cap}")),
            };
        }
    }
    for (i, assigned) in alloc.consumer_to_category.iter().enumerate() {
        if let Some(cat) = assigned {
            if !consumers[i].preference.contains(cat) {
                return CaseOutcome {
                    witness,
                    verdict: Err(format!("consumer {i} granted unlisted category {cat}")),
                };
            }
        }
    }

    // Work bound: each attempt consumes one preference-cursor position
    // and cursors never rewind.
    let pref_total: usize = consumers.iter().map(|c| c.preference.len()).sum();
    if alloc.rounds as usize > pref_total {
        return CaseOutcome {
            witness,
            verdict: Err(format!(
                "rounds {} exceed total preference entries {pref_total}",
                alloc.rounds
            )),
        };
    }

    // Stability, by brute force over the raw inputs.
    if let Some((i, cat)) = blocking_pair(&capacities, &consumers, &alloc.consumer_to_category) {
        return CaseOutcome {
            witness,
            verdict: Err(format!(
                "blocking pair: consumer {i} and category {cat} (assignment {:?})",
                alloc.consumer_to_category
            )),
        };
    }

    // Differential: deferred acceptance on the induced HR instance must
    // produce the identical matching, tie-breaks included.
    let inst = induced_instance(&capacities, &consumers);
    let reference = match solve_resident_optimal(&inst) {
        Ok(m) => m,
        Err(e) => {
            return CaseOutcome {
                witness,
                verdict: Err(format!("induced instance rejected by solver: {e:?}")),
            }
        }
    };
    let chained: Matching = alloc.into();
    if chained != reference {
        return CaseOutcome {
            witness,
            verdict: Err(format!(
                "chaining {:?} != deferred acceptance {:?}",
                chained.resident_to_hospital, reference.resident_to_hospital
            )),
        };
    }
    CaseOutcome {
        witness,
        verdict: Ok(()),
    }
}

/// The matching oracles.
pub fn properties() -> Vec<Property> {
    vec![Property::new("matching-allocate-stable", allocate_case)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_cases_pass() {
        for seed in 0..64 {
            let mut src = Source::from_seed(seed);
            let out = allocate_case(&mut src);
            assert_eq!(out.verdict, Ok(()), "seed {seed}: {}", out.witness);
        }
    }

    #[test]
    fn the_brute_force_checker_rejects_a_planted_instability() {
        // One slot, consumer 1 outranks consumer 0, but the assignment
        // hands the slot to consumer 0: (1, cat 0) must block.
        let capacities = vec![1];
        let consumers = vec![
            Consumer {
                priority: 1.0,
                preference: vec![0],
            },
            Consumer {
                priority: 2.0,
                preference: vec![0],
            },
        ];
        let bogus = vec![Some(0), None];
        assert_eq!(blocking_pair(&capacities, &consumers, &bogus), Some((1, 0)));
        // A free preferred slot also blocks.
        let empty = vec![None, None];
        assert_eq!(blocking_pair(&capacities, &consumers, &empty), Some((0, 0)));
    }
}
