//! Oracle for the classifier-input smoother (`copart_telemetry::Ewma`).
//!
//! Folds a randomized sample sequence — finite values interleaved with
//! NaN/±∞ dropouts — through `Ewma::update` and through an independent
//! `Option<f64>` fold of the recurrence `αx + (1−α)v`. The two must agree
//! *bitwise* at every step, including the no-observation (`None`) cases.
//! This is the property that flushed out the fabricated `0.0` a
//! non-finite first sample used to produce (corpus entry
//! `ewma-nonfinite-first-sample`).

use crate::property::{CaseOutcome, Property};
use crate::source::Source;
use copart_telemetry::Ewma;

/// Candidate samples, dropouts first so a zeroed (shrunken) tape yields
/// the historically buggy case: a non-finite sample before any finite
/// one.
const SAMPLES: [f64; 8] = [
    f64::NAN,
    f64::INFINITY,
    f64::NEG_INFINITY,
    0.0,
    -3.25,
    6.0,
    1.0e9,
    5.0e-3,
];

fn ewma_case(src: &mut Source) -> CaseOutcome {
    let alpha = *src.pick(&[1.0, 0.5, 0.3, 0.05]);
    let len = src.size(1, 12);
    let samples: Vec<f64> = (0..len).map(|_| *src.pick(&SAMPLES)).collect();
    let witness = format!("alpha={alpha} samples={samples:?}");

    let mut smoother = Ewma::new(alpha);
    let mut model: Option<f64> = None;
    for (i, &sample) in samples.iter().enumerate() {
        if sample.is_finite() {
            model = Some(match model {
                None => sample,
                Some(v) => alpha * sample + (1.0 - alpha) * v,
            });
        }
        let got = smoother.update(sample);
        if got != model || smoother.value() != model {
            return CaseOutcome {
                witness,
                verdict: Err(format!(
                    "diverged at step {i} (sample {sample}): update → {got:?}, \
                     value() → {:?}, reference → {model:?}",
                    smoother.value()
                )),
            };
        }
    }
    CaseOutcome {
        witness,
        verdict: Ok(()),
    }
}

/// The EWMA oracle.
pub fn properties() -> Vec<Property> {
    vec![Property::new("ewma-reference", ewma_case)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_cases_pass() {
        for seed in 0..64 {
            let mut src = Source::from_seed(seed);
            let out = ewma_case(&mut src);
            assert_eq!(out.verdict, Ok(()), "seed {seed}: {}", out.witness);
        }
    }

    /// The zeroed tape decodes to the exact historical bug trigger:
    /// α = 1.0 and one NaN sample.
    #[test]
    fn minimal_tape_is_the_historical_bug() {
        let mut src = Source::replay(&[]);
        let out = ewma_case(&mut src);
        assert!(out.witness.contains("alpha=1"), "{}", out.witness);
        assert!(out.witness.contains("NaN"), "{}", out.witness);
        assert_eq!(out.verdict, Ok(()));
    }
}
