//! Oracle for the LFOC cluster planner (`copart_core::cluster`).
//!
//! The clustering engine's whole contract is that the plan is a *pure
//! function of the classifications* — no RNG, no history — and that the
//! shared-partition layout it produces is feasible CAT schemata. Each
//! case draws a population of dual-FSM verdicts plus a ways budget and
//! demands:
//!
//! * double-run equality: forming the clusters twice from the same
//!   inputs yields byte-identical `(ids, allocations)`;
//! * permutation consistency: shuffling the applications only permutes
//!   the assignment — each application keeps its cluster's allocation;
//! * plan validity (`clusters_are_valid`): dense ids, shared per-cluster
//!   grants, the one-way floor, and the budget cap;
//! * layout feasibility (`cluster_masks_into`): members of one cluster
//!   share an identical mask, distinct clusters get disjoint regions,
//!   and the regions tile exactly the budget's way range.

use crate::property::{CaseOutcome, Property};
use crate::source::Source;
use copart_core::cluster::{cluster_masks_into, clusters_are_valid, form_clusters};
use copart_core::next_state::AppClassification;
use copart_core::{AppState, WaysBudget};
use copart_rdt::MbaLevel;

const STATES: [AppState; 3] = [AppState::Supply, AppState::Maintain, AppState::Demand];

fn cluster_case(src: &mut Source) -> CaseOutcome {
    let n_apps = src.size(1, 8);
    let apps: Vec<AppClassification> = (0..n_apps)
        .map(|_| AppClassification {
            llc: *src.pick(&STATES),
            mba: *src.pick(&STATES),
            slowdown: src.f64_in(1.0, 4.0),
        })
        .collect();
    // Every distinct class needs a way, so floor the budget at the
    // class count (the panic branch is the planner's own guard).
    let distinct = {
        let mut seen = [false; 9];
        for a in &apps {
            seen[states_key(a)] = true;
        }
        seen.iter().filter(|&&s| s).count()
    };
    let first_way = src.below(4) as u32;
    let total_ways = src.size(distinct, 11) as u32;
    let cap = MbaLevel::new(src.size(10, 100) as u8);
    let budget = WaysBudget {
        first_way,
        total_ways,
        mba_cap: cap,
    };
    let machine_ways = first_way + total_ways;
    let witness = format!(
        "apps={:?} first_way={first_way} total_ways={total_ways} cap={}",
        apps.iter().map(|a| (a.llc, a.mba)).collect::<Vec<_>>(),
        cap.percent()
    );

    // A drawn permutation for the consistency check.
    let mut perm: Vec<usize> = (0..n_apps).collect();
    for i in (1..n_apps).rev() {
        let j = src.below(i as u64 + 1) as usize;
        perm.swap(i, j);
    }

    let verdict = check_case(&apps, &perm, &budget, machine_ways);
    CaseOutcome { witness, verdict }
}

/// The same `(llc, mba)` pairing key the planner uses, recomputed
/// independently so a planner keying bug cannot hide from the oracle.
fn states_key(a: &AppClassification) -> usize {
    let rank = |s: AppState| match s {
        AppState::Supply => 0,
        AppState::Maintain => 1,
        AppState::Demand => 2,
    };
    rank(a.llc) * 3 + rank(a.mba)
}

fn check_case(
    apps: &[AppClassification],
    perm: &[usize],
    budget: &WaysBudget,
    machine_ways: u32,
) -> Result<(), String> {
    // Double-run equality: the plan is a pure function of its inputs.
    let (clusters, state) = form_clusters(apps, budget);
    let again = form_clusters(apps, budget);
    if (clusters.clone(), state.clone()) != again {
        return Err(format!(
            "two runs on identical inputs diverge: {clusters:?}/{:?} vs {again:?}",
            state.allocs
        ));
    }

    // Permutation consistency: shuffling applications permutes the
    // assignment but never changes any application's shared grant.
    let shuffled: Vec<AppClassification> = perm.iter().map(|&i| apps[i]).collect();
    let (p_clusters, p_state) = form_clusters(&shuffled, budget);
    for (pos, &i) in perm.iter().enumerate() {
        if p_state.allocs[pos] != state.allocs[i] {
            return Err(format!(
                "app {i} changed allocation under permutation: {:?} vs {:?}",
                p_state.allocs[pos], state.allocs[i]
            ));
        }
        // Same original class ⇒ same cluster, in both orders.
        for (pos2, &i2) in perm.iter().enumerate() {
            let together = clusters[i] == clusters[i2];
            let p_together = p_clusters[pos] == p_clusters[pos2];
            if together != p_together {
                return Err(format!(
                    "permutation split/merged a cluster: apps {i},{i2} together={together} permuted={p_together}"
                ));
            }
        }
    }

    // Structural validity under the budget.
    if !clusters_are_valid(&clusters, &state, budget) {
        return Err(format!(
            "formed plan fails its own validity check: {clusters:?}/{:?}",
            state.allocs
        ));
    }

    // Feasibility of the shared-partition schemata.
    let mut masks = Vec::new();
    cluster_masks_into(&clusters, &state, budget, machine_ways, &mut masks);
    if masks.len() != apps.len() {
        return Err(format!("{} masks for {} apps", masks.len(), apps.len()));
    }
    for i in 0..apps.len() {
        for j in (i + 1)..apps.len() {
            let same = clusters[i] == clusters[j];
            let a = masks[i].bits();
            let b = masks[j].bits();
            if same && a != b {
                return Err(format!(
                    "cluster {} members {i},{j} got different masks {a:#x}/{b:#x}",
                    clusters[i]
                ));
            }
            if !same && a & b != 0 {
                return Err(format!(
                    "clusters {}/{} overlap: masks {a:#x}/{b:#x}",
                    clusters[i], clusters[j]
                ));
            }
        }
    }
    let union = masks.iter().fold(0u32, |u, m| u | m.bits());
    let expected = ((1u32 << budget.total_ways) - 1) << budget.first_way;
    if union != expected {
        return Err(format!(
            "cluster regions {union:#x} do not tile the budget range {expected:#x}"
        ));
    }
    Ok(())
}

/// The cluster assignment determinism oracle.
pub fn properties() -> Vec<Property> {
    vec![Property::new(
        "cluster-assignment-deterministic",
        cluster_case,
    )]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_cases_pass() {
        for seed in 0..64 {
            let mut src = Source::from_seed(seed);
            let out = cluster_case(&mut src);
            assert_eq!(out.verdict, Ok(()), "seed {seed}: {}", out.witness);
        }
    }

    #[test]
    fn zero_tape_is_the_minimal_single_app_case() {
        let mut src = Source::replay(&[]);
        let out = cluster_case(&mut src);
        assert_eq!(out.verdict, Ok(()), "{}", out.witness);
        assert!(out.witness.contains("total_ways=1"), "{}", out.witness);
    }
}
