//! Transition-table oracle for the Fig 8/9 classifier pair
//! (`copart_core::DualFsmClassifier`).
//!
//! The production classifiers encode the paper's prose as nested
//! conditionals. This oracle re-encodes Figures 8 and 9 as literal
//! row-by-row transition tables over discretized inputs — temperature
//! (cold/warm/hot from the access-rate and miss-ratio thresholds),
//! traffic (quiet/moderate/heavy from the γ/Γ thresholds), and the
//! applied-transfer event — then steps both encodings through randomized
//! multi-epoch observation sequences clustered *on and around* every
//! threshold, where `<` vs `≤` disagreements live. The two encodings
//! must agree after every epoch.

use crate::property::{CaseOutcome, Property};
use crate::source::Source;
use copart_core::classifier::Measurement;
use copart_core::next_state::AppliedEvents;
use copart_core::{AppState, Classifier, CoPartParams, DualFsmClassifier, ResourceEvent};

const STATES: [AppState; 3] = [AppState::Supply, AppState::Maintain, AppState::Demand];

/// Fig 8 rows: LLC temperature per §5.2. Cold wins over hot (the
/// supply-first reading of the paper; both conditions can hold at once
/// when the access rate is low but the miss ratio is high).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Temp {
    Cold,
    Warm,
    Hot,
}

fn llc_temp(p: &CoPartParams, access_rate: f64, miss_ratio: f64) -> Temp {
    if access_rate < p.alpha_access_rate || miss_ratio < p.miss_ratio_supply {
        Temp::Cold
    } else if miss_ratio > p.miss_ratio_demand {
        Temp::Hot
    } else {
        Temp::Warm
    }
}

/// Fig 8 as a transition table. `improved`/`hurt` are the ±δ_P perf
/// comparisons; rows are ordered exactly as the figure resolves
/// conflicts.
fn llc_table(
    state: AppState,
    temp: Temp,
    event: ResourceEvent,
    improved: bool,
    hurt: bool,
) -> AppState {
    let reclaim_hurt = event == ResourceEvent::ReclaimedLlc && hurt;
    match (state, temp) {
        // Demand row: cold drains first; a grant that bought < δ_P
        // settles to Maintain; otherwise keep demanding.
        (AppState::Demand, Temp::Cold) => AppState::Supply,
        (AppState::Demand, _) if event == ResourceEvent::GrantedLlc && !improved => {
            AppState::Maintain
        }
        (AppState::Demand, _) => AppState::Demand,
        // Maintain row.
        (AppState::Maintain, Temp::Cold) => AppState::Supply,
        (AppState::Maintain, Temp::Hot) => AppState::Demand,
        (AppState::Maintain, Temp::Warm) if reclaim_hurt => AppState::Demand,
        (AppState::Maintain, Temp::Warm) => AppState::Maintain,
        // Supply row: a reclaim that hurt overrides even cold.
        (AppState::Supply, _) if reclaim_hurt => AppState::Demand,
        (AppState::Supply, Temp::Cold) => AppState::Supply,
        (AppState::Supply, Temp::Hot) => AppState::Demand,
        (AppState::Supply, Temp::Warm) => AppState::Maintain,
    }
}

/// Fig 9 rows: memory-traffic class per §5.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Traffic {
    Quiet,
    Moderate,
    Heavy,
}

fn mba_traffic(p: &CoPartParams, traffic_ratio: f64) -> Traffic {
    if traffic_ratio >= p.traffic_ratio_demand {
        Traffic::Heavy
    } else if traffic_ratio < p.traffic_ratio_supply {
        Traffic::Quiet
    } else {
        Traffic::Moderate
    }
}

/// Fig 9 as a transition table, including the §5.3 cross-resource rule:
/// with awareness on, only an *MBA* grant that bought < δ_P demotes
/// Demand; with it off, an LLC grant demotes too.
fn mba_table(
    p: &CoPartParams,
    state: AppState,
    traffic: Traffic,
    event: ResourceEvent,
    improved: bool,
    hurt: bool,
) -> AppState {
    let reclaim_hurt = event == ResourceEvent::ReclaimedMba && hurt;
    let demoting_grant = event == ResourceEvent::GrantedMba
        || (!p.cross_resource_awareness && event == ResourceEvent::GrantedLlc);
    match (state, traffic) {
        // Demand row (quiet resolves before heavy; γ < Γ keeps them
        // disjoint for any valid parameter set).
        (AppState::Demand, Traffic::Quiet) => AppState::Supply,
        (AppState::Demand, Traffic::Heavy) => AppState::Demand,
        (AppState::Demand, Traffic::Moderate) if demoting_grant && !improved => AppState::Maintain,
        (AppState::Demand, Traffic::Moderate) => AppState::Demand,
        // Maintain row: heavy traffic or a painful reclaim escalates
        // before quiet demotes.
        (AppState::Maintain, Traffic::Heavy) => AppState::Demand,
        (AppState::Maintain, _) if reclaim_hurt => AppState::Demand,
        (AppState::Maintain, Traffic::Quiet) => AppState::Supply,
        (AppState::Maintain, Traffic::Moderate) => AppState::Maintain,
        // Supply row mirrors Maintain.
        (AppState::Supply, Traffic::Heavy) => AppState::Demand,
        (AppState::Supply, _) if reclaim_hurt => AppState::Demand,
        (AppState::Supply, Traffic::Quiet) => AppState::Supply,
        (AppState::Supply, Traffic::Moderate) => AppState::Maintain,
    }
}

/// Values on, just under, and just over a threshold — the discretization
/// boundaries are where the implementations can disagree.
fn around(src: &mut Source, threshold: f64) -> f64 {
    *src.pick(&[
        0.0,
        threshold * 0.5,
        threshold * (1.0 - 1e-9),
        threshold,
        threshold * (1.0 + 1e-9),
        threshold * 1.5,
    ])
}

fn gen_events(src: &mut Source) -> AppliedEvents {
    let mut e = AppliedEvents::default();
    // At most one flag: multi-flag epochs collapse through the
    // `AppliedEvents` priority order before reaching either encoding, so
    // single events are the discriminating inputs.
    match src.below(5) {
        0 => {}
        1 => e.granted_llc = true,
        2 => e.granted_mba = true,
        3 => e.reclaimed_llc = true,
        _ => e.reclaimed_mba = true,
    }
    e
}

fn fsm_case(src: &mut Source) -> CaseOutcome {
    let p = CoPartParams {
        cross_resource_awareness: src.chance(0.75),
        ..CoPartParams::default()
    };
    let llc0 = *src.pick(&STATES);
    let mba0 = *src.pick(&STATES);
    let steps = src.size(1, 6);

    let mut dut = DualFsmClassifier::new();
    dut.reset(llc0, mba0);
    let (mut llc_ref, mut mba_ref) = (llc0, mba0);

    let mut trace = format!(
        "cross={} llc0={llc0} mba0={mba0}",
        p.cross_resource_awareness
    );
    for step in 0..steps {
        let m = Measurement {
            perf_delta: *src.pick(&[
                0.0,
                p.delta_p,
                -p.delta_p,
                p.delta_p * 0.5,
                -p.delta_p * 0.5,
                0.3,
                -0.3,
            ]),
            access_rate: around(src, p.alpha_access_rate),
            miss_ratio: {
                let threshold = *src.pick(&[p.miss_ratio_supply, p.miss_ratio_demand]);
                around(src, threshold)
            },
            traffic_ratio: {
                let threshold = *src.pick(&[p.traffic_ratio_supply, p.traffic_ratio_demand]);
                around(src, threshold)
            },
        };
        let events = gen_events(src);
        trace.push_str(&format!(
            " | step {step}: perf={} rate={} mr={} tr={} ev={:?}",
            m.perf_delta,
            m.access_rate,
            m.miss_ratio,
            m.traffic_ratio,
            events.llc_event()
        ));

        dut.observe(&p, &m, events);

        let improved = m.perf_delta >= p.delta_p;
        let hurt = m.perf_delta <= -p.delta_p;
        llc_ref = llc_table(
            llc_ref,
            llc_temp(&p, m.access_rate, m.miss_ratio),
            events.llc_event(),
            improved,
            hurt,
        );
        mba_ref = mba_table(
            &p,
            mba_ref,
            mba_traffic(&p, m.traffic_ratio),
            events.mba_event(),
            improved,
            hurt,
        );

        if dut.states() != (llc_ref, mba_ref) {
            let (llc_got, mba_got) = dut.states();
            return CaseOutcome {
                witness: trace,
                verdict: Err(format!(
                    "diverged at step {step}: classifier ({llc_got}, {mba_got}) \
                     vs table ({llc_ref}, {mba_ref})"
                )),
            };
        }
    }
    CaseOutcome {
        witness: trace,
        verdict: Ok(()),
    }
}

/// The FSM transition-table oracle.
pub fn properties() -> Vec<Property> {
    vec![Property::new("fsm-dual-vs-table", fsm_case)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_cases_pass() {
        for seed in 0..128 {
            let mut src = Source::from_seed(seed);
            let out = fsm_case(&mut src);
            assert_eq!(out.verdict, Ok(()), "seed {seed}: {}", out.witness);
        }
    }
}
