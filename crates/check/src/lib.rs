//! `copart-check`: the workspace's property-based differential-oracle
//! engine.
//!
//! The reproduction is full of pairs of independent implementations that
//! must agree — the instability-chaining allocator and the deferred
//! acceptance solver, the schemata codec and the kernel format, the
//! classifier FSMs and the figures they transcribe, the simulator's
//! counters and the physics they model. This crate turns each pair into
//! a *differential oracle* and drives them with seeded random inputs:
//!
//! * [`source::Source`] — generators draw from a recorded tape, so every
//!   case replays from its draw sequence alone;
//! * [`shrink::shrink`] — failing tapes are minimized by deleting, zeroing and
//!   lowering draws (integrated shrinking: the generator re-interprets
//!   the smaller tape, so shrunken cases are valid by construction);
//! * [`corpus`] — minimized failures are blessed into `tests/corpus/`
//!   and replayed on every run, with witness digests guarding against
//!   generator drift;
//! * [`runner`] — corpus replay plus fresh cases, parallel over
//!   `copart-parallel` with per-case derived seeds, producing a report
//!   that is byte-identical at any `--jobs` count;
//! * [`oracles`] — the workspace's oracle registry.
//!
//! Everything is `std`-only (the offline-build rule), deterministic, and
//! knob-controlled: `COPART_CHECK_CASES` sets the fuzz budget (64 in the
//! quick gate, 512 in the full one), `COPART_CHECK_SEED` the master
//! seed. See DESIGN.md §13 for the architecture and the corpus-blessing
//! workflow.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corpus;
pub mod oracles;
pub mod property;
pub mod runner;
pub mod shrink;
pub mod source;

pub use corpus::{fnv1a64, CorpusCase};
pub use property::{CaseOutcome, Property};
pub use runner::{run_suite, CheckConfig, Failure, SuiteReport};
pub use shrink::shrink;
pub use source::Source;
