//! Tape shrinking: minimizing a failing case by simplifying its draw
//! sequence.
//!
//! Because generators interpret tapes (see [`crate::source`]), a smaller
//! tape *is* a smaller test case — there is no per-type shrinker. The
//! passes below are the standard Hypothesis repertoire, applied to a
//! fixpoint under a deterministic attempt budget:
//!
//! 1. **delete blocks** of draws (largest first) — removes whole
//!    sub-structures, since the generator re-interprets what remains;
//! 2. **zero blocks** — collapses choices to their first/minimal
//!    alternative without changing the tape length;
//! 3. **lower single draws** — toward 0 by jumps, halving, then −1.
//!
//! Every pass only ever replaces the tape with one that is shorter or
//! lexicographically smaller, so the loop terminates even without the
//! budget; the budget just bounds worst-case work on pathological
//! properties.

/// Shrinks `tape` while `still_fails` keeps returning `true`, spending at
/// most `budget` candidate evaluations. Returns the smallest failing tape
/// found (possibly the input itself).
pub fn shrink<F>(tape: &[u64], budget: usize, mut still_fails: F) -> Vec<u64>
where
    F: FnMut(&[u64]) -> bool,
{
    let mut best: Vec<u64> = tape.to_vec();
    let mut attempts = 0usize;
    // The closure counts attempts; `try_accept` mutates `best` on success.
    loop {
        let mut progress = false;

        // Pass 1: delete blocks, largest first.
        for block in [32usize, 16, 8, 4, 2, 1] {
            if block > best.len() {
                continue;
            }
            let mut start = 0usize;
            while start + block <= best.len() {
                if attempts >= budget {
                    return best;
                }
                attempts += 1;
                let mut candidate = best.clone();
                candidate.drain(start..start + block);
                if still_fails(&candidate) {
                    best = candidate;
                    progress = true;
                    // Same start now names the next block; don't advance.
                } else {
                    start += 1;
                }
            }
        }

        // Pass 2: zero blocks of draws.
        for block in [8usize, 4, 2, 1] {
            if block > best.len() {
                continue;
            }
            for start in 0..=(best.len() - block) {
                if best[start..start + block].iter().all(|&v| v == 0) {
                    continue;
                }
                if attempts >= budget {
                    return best;
                }
                attempts += 1;
                let mut candidate = best.clone();
                candidate[start..start + block].fill(0);
                if still_fails(&candidate) {
                    best = candidate;
                    progress = true;
                }
            }
        }

        // Pass 3: lower individual draws toward 0.
        for i in 0..best.len() {
            let v = best[i];
            if v == 0 {
                continue;
            }
            for lowered in [0, v >> 32, v >> 8, v >> 1, v - 1] {
                if lowered >= best[i] {
                    continue;
                }
                if attempts >= budget {
                    return best;
                }
                attempts += 1;
                let mut candidate = best.clone();
                candidate[i] = lowered;
                if still_fails(&candidate) {
                    best = candidate;
                    progress = true;
                    break;
                }
            }
        }

        if !progress {
            return best;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Failure whenever any draw is ≥ 10: the minimal failing tape is a
    /// single draw of exactly 10.
    #[test]
    fn shrinks_to_the_boundary() {
        let tape = [3, 981, 44, 17, 2];
        let minimal = shrink(&tape, 10_000, |t| t.iter().any(|&v| v >= 10));
        assert_eq!(minimal, vec![10]);
    }

    /// Failure requires two large draws; both survive, both minimized.
    #[test]
    fn preserves_multi_draw_dependencies() {
        let tape = [500, 1, 700, 9, 9];
        let minimal = shrink(&tape, 10_000, |t| {
            t.iter().filter(|&&v| v >= 100).count() >= 2
        });
        assert_eq!(minimal, vec![100, 100]);
    }

    #[test]
    fn passing_tape_is_returned_unchanged_shape() {
        // `still_fails` always true: everything shrinks away.
        assert_eq!(shrink(&[1, 2, 3], 10_000, |_| true), Vec::<u64>::new());
        // Never true for candidates ≠ original: original returned.
        let orig = [7u64, 8, 9];
        assert_eq!(shrink(&orig, 10_000, |t| t == orig), orig.to_vec());
    }

    #[test]
    fn respects_the_attempt_budget() {
        let tape: Vec<u64> = (0..1000).map(|i| i * 31 + 5).collect();
        let mut calls = 0usize;
        let _ = shrink(&tape, 50, |t| {
            calls += 1;
            t.iter().any(|&v| v > 2)
        });
        assert!(calls <= 50, "budget overrun: {calls}");
    }

    #[test]
    fn is_deterministic() {
        let tape: Vec<u64> = (0..64).map(|i| i * 977 + 13).collect();
        let f = |t: &[u64]| t.iter().sum::<u64>() > 5000;
        assert_eq!(shrink(&tape, 4000, f), shrink(&tape, 4000, f));
    }
}
