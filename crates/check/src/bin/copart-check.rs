//! The `copart-check` binary: runs the workspace's differential-oracle
//! suite from the command line.
//!
//! ```text
//! copart-check [--cases N] [--seed S] [--jobs N] [--corpus DIR]
//!              [--no-corpus] [--replay-only] [--bless] [--list]
//! ```
//!
//! Defaults come from the environment knobs (`COPART_CHECK_CASES`,
//! `COPART_CHECK_SEED`, `COPART_JOBS`, `COPART_CORPUS_DIR`). The report
//! goes to stdout and is byte-identical for any `--jobs` value; the exit
//! code is 0 iff every property passed. `--replay-only` runs just the
//! blessed corpus (the CI corpus job); `--bless` writes each minimized
//! fresh failure into the corpus directory so that, once the underlying
//! bug is fixed, it replays as a regression test forever after.

use copart_check::runner::FailureOrigin;
use copart_check::{oracles, run_suite, CheckConfig};
use std::path::PathBuf;
use std::process::ExitCode;

struct Options {
    config: CheckConfig,
    bless: bool,
    list: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut config = CheckConfig::from_env();
    let mut bless = false;
    let mut list = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().ok_or_else(|| format!("{name} expects a value"));
        match arg.as_str() {
            "--cases" => {
                config.cases = value("--cases")?
                    .parse()
                    .map_err(|e| format!("--cases: {e}"))?;
            }
            "--seed" => {
                let v = value("--seed")?;
                config.seed = match v.strip_prefix("0x") {
                    Some(hex) => u64::from_str_radix(hex, 16),
                    None => v.parse(),
                }
                .map_err(|e| format!("--seed: {e}"))?;
            }
            "--jobs" => {
                config.jobs = value("--jobs")?
                    .parse()
                    .map_err(|e| format!("--jobs: {e}"))?;
            }
            "--corpus" => config.corpus_dir = Some(PathBuf::from(value("--corpus")?)),
            "--no-corpus" => config.corpus_dir = None,
            "--replay-only" => config.cases = 0,
            "--bless" => bless = true,
            "--list" => list = true,
            "--help" | "-h" => {
                return Err("usage: copart-check [--cases N] [--seed S] [--jobs N] \
                            [--corpus DIR] [--no-corpus] [--replay-only] [--bless] [--list]"
                    .to_string())
            }
            other => return Err(format!("unknown argument {other:?} (try --help)")),
        }
    }
    Ok(Options {
        config,
        bless,
        list,
    })
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let properties = oracles::all();
    if options.list {
        for p in &properties {
            println!("{}", p.name());
        }
        return ExitCode::SUCCESS;
    }
    let report = run_suite(&properties, &options.config);
    print!("{}", report.render());

    if options.bless {
        let Some(dir) = &options.config.corpus_dir else {
            eprintln!("--bless needs a corpus directory (drop --no-corpus)");
            return ExitCode::from(2);
        };
        for p in &report.properties {
            for f in &p.failures {
                // Corpus failures are existing entries; only fresh
                // minimized counterexamples get persisted.
                if matches!(f.origin, FailureOrigin::Corpus { .. }) {
                    continue;
                }
                let case = f.corpus_case();
                let path = dir.join(format!("{}.case", case.name));
                match std::fs::create_dir_all(dir)
                    .and_then(|()| std::fs::write(&path, case.render()))
                {
                    Ok(()) => eprintln!("blessed {}", path.display()),
                    Err(e) => eprintln!("blessing {} failed: {e}", path.display()),
                }
            }
        }
    }

    if report.ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
