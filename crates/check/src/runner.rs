//! The suite runner: corpus replay plus seeded fresh cases, in parallel,
//! with a byte-reproducible report.
//!
//! Determinism contract (the same one `copart-parallel` gives the sweep
//! engine): the report is a pure function of `(properties, config,
//! corpus)`. Each fresh case runs on its own derived seed —
//! `derive_seed(master ⊕ fnv(property), case_index)` — so neither worker
//! count nor scheduling order can leak into any case, and the report
//! contains no timing. `--jobs 1` and `--jobs 8` produce identical
//! bytes; a top-level integration test pins that.

use crate::corpus::{fnv1a64, CorpusCase};
use crate::property::Property;
use crate::shrink::shrink;
use crate::source::Source;
use copart_rng::derive_seed;
use std::path::PathBuf;

/// Default number of fresh cases per property (the `quick` budget).
pub const DEFAULT_CASES: u32 = 64;
/// Default master seed (`COPART_CHECK_SEED` overrides).
pub const DEFAULT_SEED: u64 = 0xC0_9A87;
/// Default cap on shrink candidate evaluations per failure.
pub const DEFAULT_SHRINK_BUDGET: usize = 4096;

/// Suite configuration.
#[derive(Debug, Clone)]
pub struct CheckConfig {
    /// Fresh cases per property (0 = corpus replay only).
    pub cases: u32,
    /// Master seed; every case seed is derived from it.
    pub seed: u64,
    /// Worker threads (must not affect the report bytes).
    pub jobs: usize,
    /// Corpus directory; `None` skips replay entirely.
    pub corpus_dir: Option<PathBuf>,
    /// Max shrink candidate evaluations per failure.
    pub shrink_budget: usize,
}

impl Default for CheckConfig {
    fn default() -> CheckConfig {
        CheckConfig {
            cases: DEFAULT_CASES,
            seed: DEFAULT_SEED,
            jobs: copart_parallel::effective_jobs(),
            corpus_dir: Some(crate::corpus::default_dir()),
            shrink_budget: DEFAULT_SHRINK_BUDGET,
        }
    }
}

impl CheckConfig {
    /// The default configuration with the environment knobs applied:
    /// `COPART_CHECK_CASES` (fuzz budget), `COPART_CHECK_SEED` (master
    /// seed, decimal or `0x…` hex), `COPART_JOBS` (via
    /// `copart_parallel::effective_jobs`), `COPART_CORPUS_DIR`.
    pub fn from_env() -> CheckConfig {
        let mut cfg = CheckConfig::default();
        if let Ok(v) = std::env::var("COPART_CHECK_CASES") {
            if let Ok(n) = v.trim().parse::<u32>() {
                cfg.cases = n;
            }
        }
        if let Ok(v) = std::env::var("COPART_CHECK_SEED") {
            let v = v.trim();
            let parsed = match v.strip_prefix("0x") {
                Some(hex) => u64::from_str_radix(hex, 16),
                None => v.parse::<u64>(),
            };
            if let Ok(seed) = parsed {
                cfg.seed = seed;
            }
        }
        cfg
    }
}

/// Where a failure came from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailureOrigin {
    /// A freshly generated case (index within the property's run).
    Fresh {
        /// Case index; the failing seed is `derive_seed` of it.
        case: u32,
    },
    /// A corpus entry that no longer passes or no longer reproduces.
    Corpus {
        /// Corpus file stem.
        entry: String,
    },
}

/// One failing case, minimized where possible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Failure {
    /// The property that failed.
    pub property: &'static str,
    /// Fresh case or corpus entry.
    pub origin: FailureOrigin,
    /// The oracle's disagreement (or panic message).
    pub error: String,
    /// The decoded input of the (minimized) failing tape.
    pub witness: String,
    /// The minimized tape, replayable with [`Source::replay`].
    pub tape: Vec<u64>,
}

impl Failure {
    /// A ready-to-bless corpus entry for this failure.
    pub fn corpus_case(&self) -> CorpusCase {
        CorpusCase {
            name: format!(
                "{}-{:04x}",
                self.property,
                fnv1a64(&tape_bytes(&self.tape)) & 0xffff
            ),
            property: self.property.to_string(),
            note: self.error.clone(),
            witness_fnv: fnv1a64(self.witness.as_bytes()),
            tape: self.tape.clone(),
        }
    }
}

fn tape_bytes(tape: &[u64]) -> Vec<u8> {
    tape.iter().flat_map(|v| v.to_le_bytes()).collect()
}

/// Per-property outcome.
#[derive(Debug, Clone)]
pub struct PropertyReport {
    /// The property name.
    pub name: &'static str,
    /// Fresh cases executed.
    pub cases: u32,
    /// Corpus entries replayed.
    pub corpus_entries: usize,
    /// Failures, corpus first, then fresh cases in index order.
    pub failures: Vec<Failure>,
}

/// The whole suite's outcome.
#[derive(Debug, Clone)]
pub struct SuiteReport {
    /// Master seed the fresh cases were derived from.
    pub seed: u64,
    /// Fresh-case budget per property.
    pub cases_per_property: u32,
    /// Per-property results, in registration order.
    pub properties: Vec<PropertyReport>,
    /// Corpus entries naming no registered property — always failures:
    /// a silently orphaned fixture would stop testing anything.
    pub orphaned_corpus: Vec<String>,
}

impl SuiteReport {
    /// `true` when every property passed and no corpus entry is orphaned.
    pub fn ok(&self) -> bool {
        self.orphaned_corpus.is_empty() && self.properties.iter().all(|p| p.failures.is_empty())
    }

    /// Renders the deterministic text report. Contains no timing, no
    /// paths and no worker counts, so the bytes depend only on
    /// `(properties, seed, cases, corpus)`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("copart-check report\n");
        out.push_str(&format!("seed: 0x{:x}\n", self.seed));
        out.push_str(&format!(
            "cases-per-property: {}\n",
            self.cases_per_property
        ));
        for p in &self.properties {
            let status = if p.failures.is_empty() {
                "ok"
            } else {
                "FAILED"
            };
            out.push_str(&format!(
                "property {}: {status} ({} corpus, {} fresh)\n",
                p.name, p.corpus_entries, p.cases
            ));
            for f in &p.failures {
                match &f.origin {
                    FailureOrigin::Fresh { case } => {
                        out.push_str(&format!("  fresh case {case} FAILED\n"));
                    }
                    FailureOrigin::Corpus { entry } => {
                        out.push_str(&format!("  corpus entry {entry} FAILED\n"));
                    }
                }
                out.push_str(&format!("    error: {}\n", f.error));
                out.push_str(&format!("    witness: {}\n", f.witness));
                let tape: Vec<String> = f.tape.iter().map(|v| format!("{v:x}")).collect();
                out.push_str(&format!("    tape: {}\n", tape.join(" ")));
                out.push_str("    bless as corpus entry:\n");
                for line in f.corpus_case().render().lines() {
                    out.push_str(&format!("      {line}\n"));
                }
            }
        }
        for name in &self.orphaned_corpus {
            out.push_str(&format!(
                "corpus entry {name} FAILED: names no registered property\n"
            ));
        }
        out.push_str(&format!(
            "verdict: {}\n",
            if self.ok() { "ok" } else { "FAILED" }
        ));
        out
    }
}

/// Runs `properties` under `config`: replays the corpus, then the fresh
/// seeded cases, minimizing any failure. See the module docs for the
/// determinism contract.
pub fn run_suite(properties: &[Property], config: &CheckConfig) -> SuiteReport {
    let corpus: Vec<CorpusCase> = match &config.corpus_dir {
        Some(dir) => match crate::corpus::load_dir(dir) {
            Ok(cases) => cases,
            Err(e) => panic!("corpus load failed: {e}"),
        },
        None => Vec::new(),
    };
    let orphaned_corpus: Vec<String> = corpus
        .iter()
        .filter(|c| properties.iter().all(|p| p.name() != c.property))
        .map(|c| c.name.clone())
        .collect();

    // One task per (property, fresh case) plus one per corpus entry, so
    // slow properties don't serialize behind each other.
    enum Task<'a> {
        Corpus(usize, &'a CorpusCase),
        Fresh(usize, u32),
    }
    let mut tasks: Vec<Task> = Vec::new();
    for (pi, p) in properties.iter().enumerate() {
        for c in corpus.iter().filter(|c| c.property == p.name()) {
            tasks.push(Task::Corpus(pi, c));
        }
        for case in 0..config.cases {
            tasks.push(Task::Fresh(pi, case));
        }
    }

    let results: Vec<(usize, Option<Failure>, bool)> =
        copart_parallel::par_map_indexed_jobs(&tasks, config.jobs, 1, |_, task| match task {
            Task::Corpus(pi, entry) => {
                let p = &properties[*pi];
                (*pi, replay_corpus_entry(p, entry), true)
            }
            Task::Fresh(pi, case) => {
                let p = &properties[*pi];
                (*pi, run_fresh_case(p, config, *case), false)
            }
        });

    let mut reports: Vec<PropertyReport> = properties
        .iter()
        .map(|p| PropertyReport {
            name: p.name(),
            cases: config.cases,
            corpus_entries: 0,
            failures: Vec::new(),
        })
        .collect();
    // Input order already groups by property, corpus entries first.
    for (pi, failure, is_corpus) in results {
        if is_corpus {
            reports[pi].corpus_entries += 1;
        }
        if let Some(f) = failure {
            reports[pi].failures.push(f);
        }
    }

    SuiteReport {
        seed: config.seed,
        cases_per_property: config.cases,
        properties: reports,
        orphaned_corpus,
    }
}

/// Replays one blessed corpus entry: the tape must still decode to the
/// blessed input (witness digest match) *and* the property must pass.
fn replay_corpus_entry(p: &Property, entry: &CorpusCase) -> Option<Failure> {
    let mut src = Source::replay(&entry.tape);
    let outcome = p.run(&mut src);
    let got_fnv = fnv1a64(outcome.witness.as_bytes());
    let error = if got_fnv != entry.witness_fnv {
        Some(format!(
            "witness drifted: recorded fnv {:016x}, replay decodes to fnv {:016x} \
             ({}) — a generator change broke this fixture; re-bless it",
            entry.witness_fnv, got_fnv, outcome.witness
        ))
    } else {
        outcome.verdict.clone().err()
    };
    error.map(|error| Failure {
        property: p.name(),
        origin: FailureOrigin::Corpus {
            entry: entry.name.clone(),
        },
        error,
        witness: outcome.witness,
        tape: entry.tape.clone(),
    })
}

/// Runs one fresh case on its derived seed, shrinking on failure.
fn run_fresh_case(p: &Property, config: &CheckConfig, case: u32) -> Option<Failure> {
    let case_seed = derive_seed(config.seed ^ fnv1a64(p.name().as_bytes()), u64::from(case));
    let mut src = Source::from_seed(case_seed);
    let outcome = p.run(&mut src);
    if outcome.verdict.is_ok() {
        return None;
    }
    let tape = src.tape().to_vec();
    let minimized = shrink(&tape, config.shrink_budget, |candidate| {
        let mut replay = Source::replay(candidate);
        p.run(&mut replay).verdict.is_err()
    });
    let mut replay = Source::replay(&minimized);
    let final_outcome = p.run(&mut replay);
    // The final replay consumes only the draws the generator asked for;
    // persist that trimmed tape, not the padded candidate.
    let final_tape = replay.tape().to_vec();
    Some(Failure {
        property: p.name(),
        origin: FailureOrigin::Fresh { case },
        error: final_outcome
            .verdict
            .err()
            .unwrap_or_else(|| "shrunk tape stopped failing (flaky property?)".to_string()),
        witness: final_outcome.witness,
        tape: final_tape,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::property::CaseOutcome;

    fn size_property(limit: usize) -> Property {
        Property::new("size-bounded", move |src| {
            let n = src.size(0, 1000);
            CaseOutcome {
                witness: format!("n={n}"),
                verdict: if n <= limit {
                    Ok(())
                } else {
                    Err(format!("n={n} exceeds {limit}"))
                },
            }
        })
    }

    fn cfg(cases: u32) -> CheckConfig {
        CheckConfig {
            cases,
            seed: 0xFEED,
            jobs: 2,
            corpus_dir: None,
            shrink_budget: 2048,
        }
    }

    #[test]
    fn passing_suite_is_ok_and_deterministic() {
        let props = || vec![size_property(1000)];
        let a = run_suite(&props(), &cfg(32)).render();
        let b = run_suite(&props(), &CheckConfig { jobs: 1, ..cfg(32) }).render();
        assert!(a.contains("verdict: ok"));
        assert_eq!(a, b, "report must not depend on worker count");
    }

    #[test]
    fn failures_are_minimized_to_the_boundary() {
        let report = run_suite(&[size_property(10)], &cfg(16));
        assert!(!report.ok());
        let failures = &report.properties[0].failures;
        assert!(!failures.is_empty());
        // The minimal counterexample of `n ≤ 10` over 0..=1000 is n=11:
        // shrinking must land exactly on the boundary every time.
        for f in failures {
            assert_eq!(f.witness, "n=11", "not minimized: {f:?}");
            assert_eq!(f.tape, vec![11], "tape not minimal: {f:?}");
        }
    }

    #[test]
    fn corpus_replay_passes_fixed_bugs_and_flags_drift() {
        let prop = size_property(1000);
        // Decode tape [42] to its witness, as a blessing would.
        let mut src = Source::replay(&[42]);
        let out = prop.run(&mut src);
        let good = CorpusCase {
            name: "good".to_string(),
            property: "size-bounded".to_string(),
            note: String::new(),
            witness_fnv: fnv1a64(out.witness.as_bytes()),
            tape: vec![42],
        };
        let drifted = CorpusCase {
            witness_fnv: good.witness_fnv ^ 1,
            name: "drifted".to_string(),
            ..good.clone()
        };
        assert!(replay_corpus_entry(&prop, &good).is_none());
        let f = replay_corpus_entry(&prop, &drifted).expect("drift must fail");
        assert!(f.error.contains("witness drifted"), "got: {}", f.error);
    }

    #[test]
    fn orphaned_corpus_entries_fail_the_suite() {
        let dir = std::env::temp_dir().join("copart-check-orphan-test");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("ghost.case"),
            "property: no-such-property\nwitness-fnv: 0\ntape: 1\n",
        )
        .unwrap();
        let config = CheckConfig {
            corpus_dir: Some(dir.clone()),
            ..cfg(0)
        };
        let report = run_suite(&[size_property(1000)], &config);
        std::fs::remove_dir_all(&dir).ok();
        assert!(!report.ok());
        assert_eq!(report.orphaned_corpus, vec!["ghost".to_string()]);
        assert!(report.render().contains("names no registered property"));
    }
}
