//! The draw source: a recorded tape of `u64` draws behind every generated
//! test case.
//!
//! Generators never talk to a PRNG directly; they pull raw `u64`s from a
//! [`Source`] and derive everything (sizes, choices, floats) from those.
//! The source records every draw it hands out, so a generated case is
//! fully described by its *tape* — the draw sequence. That one level of
//! indirection buys the whole engine:
//!
//! * **replay** — re-running a generator on a saved tape reproduces the
//!   exact case, which is how the regression corpus works;
//! * **integrated shrinking** — mutating the tape (deleting or shrinking
//!   draws) and re-running the generator yields a *valid* smaller case by
//!   construction, with no per-type shrinker to write (the
//!   Hypothesis/`proptest` design, not the QuickCheck one);
//! * **determinism** — a case is a pure function of its seed, so the
//!   suite is byte-reproducible at any worker count.
//!
//! Draws past the end of a replayed tape return 0, and every derived
//! value maps draw 0 onto its minimum (first choice, smallest size,
//! 0.0). Truncating a tape therefore always produces the *simplest*
//! completion of the case, which is what drives shrinking toward minimal
//! counterexamples.

use copart_rng::XorShift64Star;

/// A recorded stream of raw draws feeding a generator.
#[derive(Debug)]
pub struct Source {
    /// Draws to replay before consulting `rng` (the whole tape when
    /// replaying a corpus entry or a shrink candidate).
    prefix: Vec<u64>,
    pos: usize,
    /// Fresh entropy once the prefix is exhausted; `None` in replay mode,
    /// where exhausted tapes pad with 0 (the minimal completion).
    rng: Option<XorShift64Star>,
    log: Vec<u64>,
}

impl Source {
    /// A fresh source seeded for one generated case.
    pub fn from_seed(seed: u64) -> Source {
        Source {
            prefix: Vec::new(),
            pos: 0,
            rng: Some(XorShift64Star::seed_from_u64(seed)),
            log: Vec::new(),
        }
    }

    /// A replay source: draws come from `tape`, then pad with 0.
    pub fn replay(tape: &[u64]) -> Source {
        Source {
            prefix: tape.to_vec(),
            pos: 0,
            rng: None,
            log: Vec::new(),
        }
    }

    /// Every draw handed out so far, in order — the case's tape.
    pub fn tape(&self) -> &[u64] {
        &self.log
    }

    /// The next raw draw.
    pub fn draw(&mut self) -> u64 {
        let v = if self.pos < self.prefix.len() {
            let v = self.prefix[self.pos];
            self.pos += 1;
            v
        } else {
            match &mut self.rng {
                Some(rng) => rng.next_u64(),
                None => 0,
            }
        };
        self.log.push(v);
        v
    }

    /// A value in `[0, bound)`. Reduction is by modulo, *not* Lemire:
    /// the slight bias is irrelevant for test-case generation, and the
    /// monotone map (draw 0 ⇒ value 0) is what lets tape shrinking move
    /// generated values toward their minimum.
    ///
    /// # Panics
    ///
    /// Panics when `bound` is 0.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty choice");
        self.draw() % bound
    }

    /// A size-like value in `lo..=hi` (shrinks toward `lo`).
    pub fn size(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo <= hi, "empty size range");
        lo + self.below((hi - lo + 1) as u64) as usize
    }

    /// A uniform choice from a non-empty slice (shrinks toward the first
    /// element — order oracle alternatives simplest-first).
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len() as u64) as usize]
    }

    /// `true` with probability `p` (a zeroed tape says `true`, so make
    /// the `true` branch the simpler one).
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p
    }

    /// A float in `[0, 1)` with 53 bits of precision (shrinks toward 0).
    pub fn unit(&mut self) -> f64 {
        (self.draw() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A float in `[lo, hi)` (shrinks toward `lo`).
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "empty float range");
        lo + self.unit() * (hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replaying_a_tape_reproduces_the_draws() {
        let mut fresh = Source::from_seed(17);
        let a: Vec<u64> = (0..16).map(|_| fresh.draw()).collect();
        let mut replay = Source::replay(fresh.tape());
        let b: Vec<u64> = (0..16).map(|_| replay.draw()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn exhausted_replay_pads_with_zero() {
        let mut s = Source::replay(&[5]);
        assert_eq!(s.draw(), 5);
        assert_eq!(s.draw(), 0);
        assert_eq!(s.below(7), 0);
        assert_eq!(s.size(3, 9), 3);
        assert_eq!(s.unit(), 0.0);
    }

    #[test]
    fn zero_draws_produce_minimal_values() {
        let mut s = Source::replay(&[]);
        assert_eq!(s.size(2, 10), 2);
        assert_eq!(*s.pick(&['a', 'b', 'c']), 'a');
        assert!(s.chance(0.5));
        assert_eq!(s.f64_in(1.5, 2.5), 1.5);
    }

    #[test]
    fn log_captures_every_draw_including_fresh_ones() {
        let mut s = Source::from_seed(3);
        let _ = s.size(0, 100);
        let _ = s.unit();
        let _ = s.pick(&[1, 2, 3]);
        assert_eq!(s.tape().len(), 3);
    }
}
