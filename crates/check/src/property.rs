//! Properties: named differential oracles over a draw [`Source`].

use crate::source::Source;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// What one execution of a property reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaseOutcome {
    /// A deterministic, human-readable description of the generated
    /// input. Digested (FNV-1a) into corpus entries to detect generator
    /// drift, so it must be a pure function of the draws.
    pub witness: String,
    /// `Ok` when every oracle agreed, `Err` with the disagreement
    /// otherwise.
    pub verdict: Result<(), String>,
}

/// A named property: a generator plus its oracles, run on one [`Source`].
pub struct Property {
    name: &'static str,
    run: Box<dyn Fn(&mut Source) -> CaseOutcome + Send + Sync>,
}

impl std::fmt::Debug for Property {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Property")
            .field("name", &self.name)
            .finish()
    }
}

impl Property {
    /// Wraps a property function under a stable name. Names appear in
    /// reports and corpus files; renaming one orphans its corpus entries.
    pub fn new(
        name: &'static str,
        run: impl Fn(&mut Source) -> CaseOutcome + Send + Sync + 'static,
    ) -> Property {
        Property {
            name,
            run: Box::new(run),
        }
    }

    /// The stable property name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Runs the property on `source`, converting a panic (in the
    /// property or the code under test) into a failing outcome so the
    /// suite can minimize and report it like any other counterexample.
    pub fn run(&self, source: &mut Source) -> CaseOutcome {
        match catch_unwind(AssertUnwindSafe(|| (self.run)(source))) {
            Ok(outcome) => outcome,
            Err(payload) => {
                let msg = if let Some(s) = payload.downcast_ref::<&str>() {
                    (*s).to_string()
                } else if let Some(s) = payload.downcast_ref::<String>() {
                    s.clone()
                } else {
                    "non-string panic payload".to_string()
                };
                CaseOutcome {
                    witness: "<panicked before reporting a witness>".to_string(),
                    verdict: Err(format!("panic: {msg}")),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_reports_its_witness() {
        let p = Property::new("always-ok", |src| {
            let n = src.size(0, 10);
            CaseOutcome {
                witness: format!("n={n}"),
                verdict: Ok(()),
            }
        });
        let mut src = Source::replay(&[7]);
        let out = p.run(&mut src);
        assert_eq!(out.witness, "n=7");
        assert_eq!(out.verdict, Ok(()));
    }

    #[test]
    fn panics_become_failures() {
        let p = Property::new("panics", |src| {
            let n = src.size(0, 10);
            assert!(n < 5, "n too big: {n}");
            CaseOutcome {
                witness: format!("n={n}"),
                verdict: Ok(()),
            }
        });
        let mut src = Source::replay(&[9]);
        let out = p.run(&mut src);
        let err = out.verdict.unwrap_err();
        assert!(err.contains("panic"), "got: {err}");
        assert!(err.contains("n too big: 9"), "got: {err}");
    }
}
