//! The persisted regression corpus: minimized failing tapes, replayed on
//! every run.
//!
//! When a property fails, the runner minimizes the tape and prints a
//! ready-to-save corpus entry; once the underlying bug is fixed the entry
//! is *blessed* into `tests/corpus/` (by hand or with
//! `copart-check --bless`) and replays forever after as a regression
//! test. An entry records:
//!
//! * the property it belongs to,
//! * the tape (hex `u64` draws) that reproduces the input, and
//! * an FNV-1a digest of the *witness* — the generator's deterministic
//!   description of the decoded input.
//!
//! The digest is the drift guard: if a generator is later changed, a
//! saved tape may silently decode to a different input and the fixture
//! would test nothing. Replay therefore recomputes the witness and fails
//! loudly on a digest mismatch, telling the developer to re-bless.
//!
//! Format (`*.case` files, `#` comments and blank lines ignored):
//!
//! ```text
//! property: schemata-validation
//! note: MB levels above 100 were accepted
//! witness-fnv: 9e6a3f21c4b0d87e
//! tape: 2 0 65 0
//! ```

use std::fs;
use std::path::{Path, PathBuf};

/// 64-bit FNV-1a over a byte string — the corpus witness digest. Small,
/// std-only, and stable across platforms; collision resistance beyond
/// accident-detection is not required here.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// One blessed regression case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusCase {
    /// File stem the case was loaded from (diagnostics only).
    pub name: String,
    /// The property this tape belongs to.
    pub property: String,
    /// Free-form description of the original failure.
    pub note: String,
    /// FNV-1a digest of the witness the tape decoded to when blessed.
    pub witness_fnv: u64,
    /// The minimized draw sequence.
    pub tape: Vec<u64>,
}

impl CorpusCase {
    /// Parses one `*.case` document.
    pub fn parse(name: &str, text: &str) -> Result<CorpusCase, String> {
        let mut property = None;
        let mut note = String::new();
        let mut witness_fnv = None;
        let mut tape = None;
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, value) = line
                .split_once(':')
                .ok_or_else(|| format!("{name}: malformed line {line:?}"))?;
            let value = value.trim();
            match key.trim() {
                "property" => property = Some(value.to_string()),
                "note" => note = value.to_string(),
                "witness-fnv" => {
                    let v = u64::from_str_radix(value, 16)
                        .map_err(|e| format!("{name}: bad witness-fnv {value:?}: {e}"))?;
                    witness_fnv = Some(v);
                }
                "tape" => {
                    let draws: Result<Vec<u64>, String> = value
                        .split_whitespace()
                        .map(|w| {
                            u64::from_str_radix(w, 16)
                                .map_err(|e| format!("{name}: bad tape draw {w:?}: {e}"))
                        })
                        .collect();
                    tape = Some(draws?);
                }
                other => return Err(format!("{name}: unknown key {other:?}")),
            }
        }
        Ok(CorpusCase {
            name: name.to_string(),
            property: property.ok_or_else(|| format!("{name}: missing property"))?,
            note,
            witness_fnv: witness_fnv.ok_or_else(|| format!("{name}: missing witness-fnv"))?,
            tape: tape.ok_or_else(|| format!("{name}: missing tape"))?,
        })
    }

    /// Renders the case back into the on-disk format.
    pub fn render(&self) -> String {
        let tape: Vec<String> = self.tape.iter().map(|v| format!("{v:x}")).collect();
        format!(
            "property: {}\nnote: {}\nwitness-fnv: {:016x}\ntape: {}\n",
            self.property,
            self.note,
            self.witness_fnv,
            tape.join(" ")
        )
    }
}

/// Loads every `*.case` file under `dir`, sorted by file name so replay
/// order (and hence the report) is stable. A missing directory is an
/// empty corpus; an unreadable or malformed file is an error — a corpus
/// that silently fails to load would mask regressions.
pub fn load_dir(dir: &Path) -> Result<Vec<CorpusCase>, String> {
    if !dir.exists() {
        return Ok(Vec::new());
    }
    let mut paths: Vec<PathBuf> = fs::read_dir(dir)
        .map_err(|e| format!("reading corpus dir {}: {e}", dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "case"))
        .collect();
    paths.sort();
    let mut cases = Vec::with_capacity(paths.len());
    for path in paths {
        let name = path
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("<non-utf8>")
            .to_string();
        let text =
            fs::read_to_string(&path).map_err(|e| format!("reading {}: {e}", path.display()))?;
        cases.push(CorpusCase::parse(&name, &text)?);
    }
    Ok(cases)
}

/// The corpus directory: `$COPART_CORPUS_DIR` when set, else the
/// workspace's `tests/corpus/`.
pub fn default_dir() -> PathBuf {
    match std::env::var_os("COPART_CORPUS_DIR") {
        Some(dir) => PathBuf::from(dir),
        None => Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/corpus"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn case_round_trips_through_render_and_parse() {
        let case = CorpusCase {
            name: "x".to_string(),
            property: "schemata-validation".to_string(),
            note: "MB levels above 100 were accepted".to_string(),
            witness_fnv: 0x9e6a_3f21_c4b0_d87e,
            tape: vec![2, 0, 0x65, 0],
        };
        let parsed = CorpusCase::parse("x", &case.render()).unwrap();
        assert_eq!(parsed, case);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "# header\n\nproperty: p\nwitness-fnv: ff\ntape:\n";
        let case = CorpusCase::parse("c", text).unwrap();
        assert_eq!(case.property, "p");
        assert_eq!(case.witness_fnv, 0xff);
        assert!(case.tape.is_empty());
        assert!(case.note.is_empty());
    }

    #[test]
    fn missing_fields_and_bad_draws_are_rejected() {
        assert!(CorpusCase::parse("c", "property: p\ntape: 1\n")
            .unwrap_err()
            .contains("witness-fnv"));
        assert!(
            CorpusCase::parse("c", "property: p\nwitness-fnv: 0\ntape: xyz\n")
                .unwrap_err()
                .contains("bad tape draw")
        );
        assert!(CorpusCase::parse("c", "gibberish\n")
            .unwrap_err()
            .contains("malformed"));
    }

    #[test]
    fn missing_directory_is_an_empty_corpus() {
        let cases = load_dir(Path::new("/nonexistent/corpus/dir")).unwrap();
        assert!(cases.is_empty());
    }
}
